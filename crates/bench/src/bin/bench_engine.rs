//! Engine throughput check: the §I claim that *"SimMR can process over one
//! million events per second"* — measured at 100-, 1 000- and 10 000-job
//! scale on the synthetic Facebook workload, under FIFO, MaxEDF, MinEDF
//! and the hierarchical pool tree (`hier`, the heaviest scheduler: every
//! slot assignment walks the tree and the min-share clocks).
//!
//! A streaming section runs first: 100k- and 1M-job pooled binary traces
//! (`SIMMR_BENCH_STREAM_JOBS` overrides, empty disables) are generated
//! straight to disk and replayed through `SimulatorEngine::from_source`,
//! recording throughput *and* peak RSS per row — the evidence that the
//! streaming path's memory is O(backlog), not O(trace).
//!
//! For each trace size the binary runs the simulation repeatedly for at
//! least `SIMMR_BENCH_SECS` seconds (default 2) per policy, reports the
//! median events/second, and writes the machine-readable summary to
//! `BENCH_engine.json` at the workspace root. The interesting comparison
//! is *across sizes*: with the incremental scheduler view the per-event
//! cost must stay flat as the number of jobs grows.
//!
//! With `SIMMR_BENCH_ASSERT=1` the binary turns into a regression gate
//! (used by CI to verify the invariant checker costs nothing when
//! disabled): it exits nonzero unless the paper's claim and the scaling
//! bound hold *and* FIFO/`hier`/`minedf` 1k-job and `maxedf` 10k-job
//! throughput stay within a noise band of the committed
//! `BENCH_engine.json` baseline (default ≥ 50% of it, for noisy shared
//! runners; tune with `SIMMR_BENCH_NOISE_FRAC`). The `hier` floor keeps
//! the incremental share view's ~2-orders-of-magnitude speedup from
//! silently regressing to the full-queue re-aggregation cost; the EDF
//! floors do the same for the incremental deadline index (the old
//! full-scan `maxedf` ran 10k jobs ~85x slower). The baseline is read
//! before the file is overwritten.
//!
//! A fork-sweep section measures the time-travel checkpoint claim: ten
//! what-if variants diverging at 90% of the makespan, replayed from
//! scratch (`fork-cold`) vs warm-started from one shared prefix
//! checkpoint (`fork-warm`, capture included). Both loops are serial so
//! the speedup is machine-independent; under `SIMMR_BENCH_ASSERT=1` the
//! warm sweep must run at least 2x faster than the cold one, and every
//! warm report is asserted equal to its cold counterpart first.

use simmr_bench::csvout::workspace_root;
use simmr_core::{Divergence, EngineConfig, ForkSpec, SimulatorEngine};
use simmr_sched::parse_policy;
use simmr_trace::{BinTraceSource, FacebookWorkload, SyntheticWorkload};
use simmr_types::{SimTime, WorkloadTrace};
use std::path::{Path, PathBuf};
use std::time::Instant;

const SIZES: [usize; 3] = [100, 1_000, 10_000];
/// (JSON label, parse spec, largest size measured). The regression gates
/// read the `fifo`, `hier`, `maxedf` and `minedf` rows. The incremental
/// share view and deadline index keep every policy's per-event cost flat
/// in the backlog depth, so all run the full 10k point.
const POLICIES: [(&str, &str, usize); 4] = [
    ("fifo", "fifo", 10_000),
    ("maxedf", "maxedf", 10_000),
    ("minedf", "minedf", 10_000),
    ("hier", "hier:prod[w=3,min=4]{etl,serving},adhoc[w=1]", 10_000),
];

fn min_secs() -> f64 {
    std::env::var("SIMMR_BENCH_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(2.0)
}

fn assert_mode() -> bool {
    std::env::var("SIMMR_BENCH_ASSERT").map(|v| v == "1").unwrap_or(false)
}

fn noise_frac() -> f64 {
    std::env::var("SIMMR_BENCH_NOISE_FRAC").ok().and_then(|v| v.parse().ok()).unwrap_or(0.5)
}

/// `policy` events/sec at `jobs` scale from a previously written
/// `BENCH_engine.json`, if one exists and parses.
fn baseline_rate(path: &std::path::Path, policy: &str, jobs: u64) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc: serde_json::Value = serde_json::from_str(&text).ok()?;
    let serde_json::Value::Array(rows) = doc.get("results")? else {
        return None;
    };
    rows.iter()
        .find(|r| {
            r.get("jobs") == Some(&serde_json::Value::U64(jobs))
                && r.get("policy") == Some(&serde_json::Value::Str(policy.to_owned()))
        })
        .and_then(|r| match r.get("events_per_sec") {
            Some(serde_json::Value::F64(v)) => Some(*v),
            Some(serde_json::Value::U64(v)) => Some(*v as f64),
            _ => None,
        })
}

fn trace_of(jobs: usize) -> WorkloadTrace {
    FacebookWorkload { mean_interarrival_ms: 10_000.0 }.generate(jobs, 0xBE)
}

/// Job counts for the streaming (binary-trace) section; override with a
/// comma list in `SIMMR_BENCH_STREAM_JOBS`, disable with an empty value.
fn stream_sizes() -> Vec<usize> {
    match std::env::var("SIMMR_BENCH_STREAM_JOBS") {
        Err(_) => vec![100_000, 1_000_000],
        Ok(v) => v
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .filter_map(|s| s.parse().ok())
            .collect(),
    }
}

/// The streaming section's workload: the small-job head of the Facebook
/// mix (1-map, 2-map and 10x3 jobs — already >2/3 of the job *count* in
/// the full mix) at a mean inter-arrival that keeps the cluster around
/// half-utilized, so the backlog — and therefore the streaming engine's
/// resident memory — stays bounded no matter how long the trace is. The
/// full mix's 2 400-map tail would make a million-job replay about task
/// volume instead of job-stream volume.
fn stream_workload() -> SyntheticWorkload {
    let mut w = FacebookWorkload { mean_interarrival_ms: 20_000.0 }.workload();
    w.classes.truncate(3);
    w
}

/// Peak resident set size of this process (Linux `VmHWM`), in KiB.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// One streaming replay of a binary trace file: jobs are pulled from the
/// reader one arrival ahead, per-job results are not collected, so memory
/// is O(backlog), not O(trace).
fn one_stream_run(path: &Path) -> u64 {
    let source = BinTraceSource::open(path).expect("stream trace opens");
    SimulatorEngine::from_source(
        EngineConfig::new(64, 64).without_job_results(),
        Box::new(source),
        parse_policy("fifo").expect("policy exists"),
    )
    .try_run()
    .expect("stream replay succeeds")
    .events_processed
}

/// Streams `jobs` pooled jobs into a binary trace file under the target
/// directory and returns its path. Generation is O(pool) memory.
fn write_stream_trace(jobs: usize) -> PathBuf {
    let dir = workspace_root().join("target");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("bench_stream_{jobs}.trace.bin"));
    let start = Instant::now();
    let file = std::fs::File::create(&path).expect("stream trace file creates");
    stream_workload()
        .write_bin(jobs, 8, 0xBE, None, std::io::BufWriter::new(file))
        .expect("stream trace writes")
        .into_inner()
        .expect("stream trace flushes");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    eprintln!(
        "[bench_engine] generated {jobs}-job binary trace ({:.1} MiB, {:.2} s, {:.1} B/job)",
        bytes as f64 / (1 << 20) as f64,
        start.elapsed().as_secs_f64(),
        bytes as f64 / jobs as f64
    );
    path
}

/// Streaming counterpart of [`measure`]: replays the binary trace at
/// `path` until `min_secs` accumulate (at least 3 reps) and records the
/// process's peak RSS alongside the throughput.
fn measure_stream(path: &Path, jobs: usize, min_secs: f64) -> Measurement {
    let mut samples = Vec::new();
    let mut events = None;
    let mut total = 0.0;
    while total < min_secs || samples.len() < 3 {
        let start = Instant::now();
        let n = one_stream_run(path);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(n, *events.get_or_insert(n), "simulation is not deterministic");
        samples.push(secs);
        total += secs;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let median_secs = samples[samples.len() / 2];
    let events = events.expect("at least one rep ran");
    Measurement {
        jobs,
        policy: "fifo-stream",
        events,
        reps: samples.len(),
        median_secs,
        events_per_sec: events as f64 / median_secs,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Fork-sweep scale: enough jobs that the 90% prefix dominates a full
/// replay, small enough to keep the gate fast.
const FORK_JOBS: usize = 1_000;
const FORK_VARIANTS: usize = 10;

/// The `i`-th what-if variant of the fork sweep: a capacity-growth
/// divergence (the cheapest kind to apply, so the measurement isolates
/// prefix replay vs resume cost rather than divergence cost).
fn fork_of(at: SimTime, i: usize) -> ForkSpec {
    ForkSpec::new(at, vec![Divergence::AddSlots { map_slots: i + 1, reduce_slots: i % 3 + 1 }])
}

/// Measures the fork sweep both ways — every variant replayed from
/// scratch vs all variants warm-started from one shared checkpoint
/// (capture included in the warm time) — and returns the two rows plus
/// the warm-start speedup. Asserts warm == cold byte-for-byte first.
fn measure_fork_sweep(min_secs: f64) -> (Measurement, Measurement, f64) {
    let trace = trace_of(FORK_JOBS);
    let config = EngineConfig::new(64, 64);
    let policy = || parse_policy("fifo").expect("policy exists");
    let base = SimulatorEngine::new(config, &trace, policy()).run();
    let at = SimTime::from_millis(base.makespan.as_millis() / 10 * 9);
    let one_cold = || -> u64 {
        (0..FORK_VARIANTS)
            .map(|i| {
                SimulatorEngine::new(config, &trace, policy())
                    .run_forked(fork_of(at, i))
                    .expect("cold fork runs")
                    .events_processed
            })
            .sum()
    };
    let one_warm = || -> u64 {
        let ckpt = SimulatorEngine::new(config, &trace, policy())
            .checkpoint_at(at)
            .expect("prefix checkpoints");
        (0..FORK_VARIANTS)
            .map(|i| {
                let mut engine = SimulatorEngine::resume_materialized(config, &ckpt, policy())
                    .expect("checkpoint resumes");
                engine.apply_fork(fork_of(at, i)).expect("divergence applies");
                engine.try_run().expect("warm fork runs").events_processed
            })
            .sum()
    };
    // correctness before speed: the warm path must be byte-identical
    let ckpt =
        SimulatorEngine::new(config, &trace, policy()).checkpoint_at(at).expect("checkpoint");
    for i in 0..FORK_VARIANTS {
        let cold = SimulatorEngine::new(config, &trace, policy())
            .run_forked(fork_of(at, i))
            .expect("cold fork runs");
        let mut engine = SimulatorEngine::resume_materialized(config, &ckpt, policy())
            .expect("checkpoint resumes");
        engine.apply_fork(fork_of(at, i)).expect("divergence applies");
        let warm = engine.try_run().expect("warm fork runs");
        assert_eq!(warm, cold, "warm fork diverged from cold replay (variant {i})");
    }
    let cold = measure_fn(FORK_JOBS, "fork-cold", min_secs, one_cold);
    let warm = measure_fn(FORK_JOBS, "fork-warm", min_secs, one_warm);
    let speedup = cold.median_secs / warm.median_secs;
    (cold, warm, speedup)
}

/// [`measure`] for an arbitrary runner returning its event count.
fn measure_fn(
    jobs: usize,
    label: &'static str,
    min_secs: f64,
    run: impl Fn() -> u64,
) -> Measurement {
    let events = run(); // warm-up + event count
    let mut samples = Vec::new();
    let mut total = 0.0;
    while total < min_secs || samples.len() < 3 {
        let start = Instant::now();
        let n = run();
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(n, events, "simulation is not deterministic");
        samples.push(secs);
        total += secs;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let median_secs = samples[samples.len() / 2];
    Measurement {
        jobs,
        policy: label,
        events,
        reps: samples.len(),
        median_secs,
        events_per_sec: events as f64 / median_secs,
        peak_rss_kb: None,
    }
}

fn one_run(trace: &WorkloadTrace, policy: &str) -> u64 {
    SimulatorEngine::new(
        EngineConfig::new(64, 64),
        trace,
        parse_policy(policy).expect("policy exists"),
    )
    .run()
    .events_processed
}

struct Measurement {
    jobs: usize,
    policy: &'static str,
    events: u64,
    reps: usize,
    median_secs: f64,
    events_per_sec: f64,
    /// Peak RSS after the run (streaming rows only) — the flat-memory
    /// evidence for the streaming engine.
    peak_rss_kb: Option<u64>,
}

/// Repeats the simulation until `min_secs` of wall time accumulate (at
/// least 3 reps) and returns the median per-run duration.
fn measure(
    trace: &WorkloadTrace,
    jobs: usize,
    (label, spec): (&'static str, &'static str),
    min_secs: f64,
) -> Measurement {
    let events = one_run(trace, spec); // warm-up + event count
    let mut samples = Vec::new();
    let mut total = 0.0;
    while total < min_secs || samples.len() < 3 {
        let start = Instant::now();
        let n = one_run(trace, spec);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(n, events, "simulation is not deterministic");
        samples.push(secs);
        total += secs;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let median_secs = samples[samples.len() / 2];
    Measurement {
        jobs,
        policy: label,
        events,
        reps: samples.len(),
        median_secs,
        events_per_sec: events as f64 / median_secs,
        peak_rss_kb: None,
    }
}

fn main() {
    let min_secs = min_secs();
    let out_path = workspace_root().join("BENCH_engine.json");
    // read the committed baselines before this run overwrites the file
    let baseline_fifo_1k = baseline_rate(&out_path, "fifo", 1_000);
    let baseline_hier_1k = baseline_rate(&out_path, "hier", 1_000);
    let baseline_maxedf_10k = baseline_rate(&out_path, "maxedf", 10_000);
    let baseline_minedf_1k = baseline_rate(&out_path, "minedf", 1_000);
    eprintln!("[bench_engine] >= {min_secs} s per point; set SIMMR_BENCH_SECS to change");
    println!(
        "{:>8} {:>8} {:>12} {:>6} {:>12} {:>14}",
        "jobs", "policy", "events", "reps", "median_ms", "events/sec"
    );
    let mut rows = Vec::new();
    // The streaming section runs first so the process's peak RSS (the
    // flat-memory evidence recorded per row) reflects the streaming
    // engine, not the materialized traces benchmarked below.
    for jobs in stream_sizes() {
        let path = write_stream_trace(jobs);
        let m = measure_stream(&path, jobs, min_secs);
        println!(
            "{:>8} {:>11} {:>12} {:>6} {:>12.3} {:>14.0}   peak_rss {} MiB",
            m.jobs,
            m.policy,
            m.events,
            m.reps,
            m.median_secs * 1e3,
            m.events_per_sec,
            m.peak_rss_kb.map(|kb| (kb / 1024).to_string()).unwrap_or_else(|| "?".into())
        );
        rows.push(m);
    }
    for &jobs in &SIZES {
        let trace = trace_of(jobs);
        for (label, spec, max_jobs) in POLICIES {
            if jobs > max_jobs {
                continue;
            }
            let m = measure(&trace, jobs, (label, spec), min_secs);
            println!(
                "{:>8} {:>8} {:>12} {:>6} {:>12.3} {:>14.0}",
                m.jobs,
                m.policy,
                m.events,
                m.reps,
                m.median_secs * 1e3,
                m.events_per_sec
            );
            rows.push(m);
        }
    }

    // Fork sweep: ten late-diverging what-if variants, cold vs warm.
    let (fork_cold, fork_warm, fork_speedup) = measure_fork_sweep(min_secs);
    for m in [&fork_cold, &fork_warm] {
        println!(
            "{:>8} {:>9} {:>12} {:>6} {:>12.3} {:>14.0}",
            m.jobs,
            m.policy,
            m.events,
            m.reps,
            m.median_secs * 1e3,
            m.events_per_sec
        );
    }
    println!(
        "fork warm-start speedup ({FORK_VARIANTS} variants at 90% of makespan): {fork_speedup:.2}x"
    );
    rows.push(fork_cold);
    rows.push(fork_warm);

    // The paper's claim, checked at 1k-job scale, plus the scaling bound:
    // 10k jobs may cost at most 2x the per-event time of 1k jobs.
    let rate = |jobs: usize, policy: &str| {
        rows.iter()
            .find(|m| m.jobs == jobs && m.policy == policy)
            .map(|m| m.events_per_sec)
            .unwrap_or(0.0)
    };
    let fifo_1k = rate(1_000, "fifo");
    let fifo_10k = rate(10_000, "fifo");
    let claim_met = fifo_1k >= 1.0e6;
    let scaling_ok = fifo_10k * 2.0 >= fifo_1k;
    println!(
        "\n1M events/sec claim (fifo, 1k jobs): {} ({:.2} M events/sec)",
        if claim_met { "MET" } else { "NOT MET" },
        fifo_1k / 1e6
    );
    println!(
        "10k within 2x of 1k (fifo): {} ({:.2} M events/sec at 10k)",
        if scaling_ok { "OK" } else { "DEGRADED" },
        fifo_10k / 1e6
    );

    let json_rows: Vec<serde_json::Value> = rows
        .iter()
        .map(|m| {
            let mut fields = vec![
                ("jobs".to_owned(), serde_json::Value::U64(m.jobs as u64)),
                ("policy".to_owned(), serde_json::Value::Str(m.policy.to_owned())),
                ("events".to_owned(), serde_json::Value::U64(m.events)),
                ("reps".to_owned(), serde_json::Value::U64(m.reps as u64)),
                ("median_secs".to_owned(), serde_json::Value::F64(m.median_secs)),
                ("events_per_sec".to_owned(), serde_json::Value::F64(m.events_per_sec)),
            ];
            if let Some(kb) = m.peak_rss_kb {
                fields.push(("peak_rss_kb".to_owned(), serde_json::Value::U64(kb)));
            }
            serde_json::Value::Object(fields)
        })
        .collect();
    let doc = serde_json::Value::Object(vec![
        ("benchmark".to_owned(), serde_json::Value::Str("engine_events_per_sec".to_owned())),
        ("workload".to_owned(), serde_json::Value::Str("facebook_ia10s_seed0xBE".to_owned())),
        ("cluster".to_owned(), serde_json::Value::Str("64x64".to_owned())),
        ("claim_1m_events_per_sec_fifo_1k".to_owned(), serde_json::Value::Bool(claim_met)),
        ("scaling_10k_within_2x_of_1k".to_owned(), serde_json::Value::Bool(scaling_ok)),
        ("fork_warm_speedup".to_owned(), serde_json::Value::F64(fork_speedup)),
        ("results".to_owned(), serde_json::Value::Array(json_rows)),
    ]);
    let text = serde_json::to_string_pretty(&doc).expect("report serializes") + "\n";
    match std::fs::write(&out_path, text) {
        Ok(()) => eprintln!("[bench_engine] wrote {}", out_path.display()),
        Err(e) => eprintln!("[bench_engine] cannot write {}: {e}", out_path.display()),
    }

    if assert_mode() {
        let mut failures = Vec::new();
        if !claim_met {
            failures.push(format!(
                "1M events/sec claim not met (fifo 1k: {:.2} M events/sec)",
                fifo_1k / 1e6
            ));
        }
        if !scaling_ok {
            failures.push(format!(
                "scaling degraded: fifo 10k ({:.2} M/s) below half of 1k ({:.2} M/s)",
                fifo_10k / 1e6,
                fifo_1k / 1e6
            ));
        }
        // Flat-memory gate for the streaming engine: peak RSS is sampled
        // after each streaming row (which run first and in increasing
        // size). A 10x-longer trace materialized would cost ~10x the
        // memory; the streaming path's high-water mark may only grow with
        // the deepest transient backlog (the heavy-tailed durations make
        // that mildly size-dependent — observed ~2x from 100k to 1M jobs,
        // at single-digit MiB), so anything past 4x means the engine is
        // holding onto O(trace) state again. VmHWM is monotone, so the
        // ratio is always >= 1.
        let stream_rss: Vec<(usize, u64)> = rows
            .iter()
            .filter(|m| m.policy == "fifo-stream")
            .filter_map(|m| m.peak_rss_kb.map(|kb| (m.jobs, kb)))
            .collect();
        if let [.., (small_jobs, small_kb), (big_jobs, big_kb)] = stream_rss[..] {
            let ratio = big_kb as f64 / small_kb.max(1) as f64;
            if ratio > 4.0 {
                failures.push(format!(
                    "streaming memory not flat: peak RSS grew {ratio:.2}x \
                     ({small_kb} KiB at {small_jobs} jobs -> {big_kb} KiB at {big_jobs} jobs)"
                ));
            } else {
                eprintln!(
                    "[bench_engine] streaming peak RSS flat: {small_kb} KiB at {small_jobs} \
                     jobs vs {big_kb} KiB at {big_jobs} jobs ({ratio:.2}x)"
                );
            }
        }
        // the time-travel claim: warm-starting a late-divergence sweep
        // from one shared checkpoint must clearly beat replaying every
        // variant from scratch. Both loops are serial, so the ratio is
        // machine-independent; the ideal here is ~5x (prefix 0.9 of the
        // work, run once instead of ten times), 2x leaves room for
        // resume/capture overhead on noisy runners.
        if fork_speedup < 2.0 {
            let median_ms = |label: &str| {
                rows.iter().find(|m| m.policy == label).map(|m| m.median_secs * 1e3).unwrap_or(0.0)
            };
            failures.push(format!(
                "fork warm-start speedup {fork_speedup:.2}x below the 2x floor \
                 (cold {:.1} ms vs warm {:.1} ms for {FORK_VARIANTS} variants)",
                median_ms("fork-cold"),
                median_ms("fork-warm")
            ));
        } else {
            eprintln!("[bench_engine] fork warm-start speedup {fork_speedup:.2}x (floor 2x)");
        }
        let mut noise_gate =
            |policy: &str, at: &str, measured: f64, baseline: Option<f64>| match baseline {
                Some(base) => {
                    let floor = base * noise_frac();
                    if measured < floor {
                        failures.push(format!(
                            "{policy} {at} throughput {:.2} M/s fell below the noise floor \
                             {:.2} M/s ({}% of the baseline {:.2} M/s)",
                            measured / 1e6,
                            floor / 1e6,
                            (noise_frac() * 100.0) as u32,
                            base / 1e6
                        ));
                    } else {
                        eprintln!(
                            "[bench_engine] {policy} {at} {:.2} M/s within noise of baseline \
                             {:.2} M/s",
                            measured / 1e6,
                            base / 1e6
                        );
                    }
                }
                None => eprintln!(
                    "[bench_engine] no {policy} baseline in BENCH_engine.json; skipping noise gate"
                ),
            };
        noise_gate("fifo", "1k", fifo_1k, baseline_fifo_1k);
        // keeps the incremental share view's speedup: a regression to the
        // old full-reaggregation cost sits ~100x under this floor
        noise_gate("hier", "1k", rate(1_000, "hier"), baseline_hier_1k);
        // likewise for the incremental deadline index: the old full-scan
        // maxedf sat ~85x under its 10k floor
        noise_gate("maxedf", "10k", rate(10_000, "maxedf"), baseline_maxedf_10k);
        noise_gate("minedf", "1k", rate(1_000, "minedf"), baseline_minedf_1k);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("[bench_engine] ASSERT FAILED: {f}");
            }
            std::process::exit(1);
        }
        eprintln!("[bench_engine] all throughput assertions passed");
    }
}
