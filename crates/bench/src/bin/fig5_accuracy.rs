//! Figure 5 (§IV-D): simulator accuracy. A workload of three executions of
//! the six applications runs on the testbed under FIFO / MinEDF / MaxEDF;
//! the collected history is profiled and replayed in SimMR (all three
//! policies) and in Mumak (FIFO). Reported per application: actual
//! completion time and the simulators' relative error.
//!
//! Paper reference: SimMR ≤ 2.7% avg / 6.6% max error under FIFO (≤ 3.7% /
//! 8.6% MaxEDF, ≤ 1.1% / 2.7% MinEDF); Mumak 37% avg / 51.7% max,
//! always underestimating.

use simmr_bench::csvout::write_csv;
use simmr_bench::pipeline::{
    accuracy_rows, max_abs_error, mean_abs_error, replay_in_mumak, replay_in_simmr,
    replay_in_simmr_with, run_testbed, AccuracyRow,
};
use simmr_bench::workloads::standalone_runtime_ms;
use simmr_cluster::{ClusterConfig, ClusterPolicy};
use simmr_mumak::MumakConfig;
use simmr_stats::SeededRng;
use simmr_types::SimTime;

/// Builds the 18-job workload (6 apps × 3 datasets = "three executions of
/// the six applications") with spaced arrivals and §V-B deadlines.
fn workload(seed: u64) -> Vec<(simmr_apps::JobModel, SimTime, Option<SimTime>)> {
    let mut rng = SeededRng::new(seed);
    let mut models = simmr_bench::suite_models(&[0, 1, 2]);
    rng.shuffle(&mut models);
    let mut jobs = Vec::new();
    let mut clock = SimTime::ZERO;
    for model in models {
        // deadline: df=2 over the model-estimated standalone runtime; the
        // exact value only matters for the EDF policies' ordering
        let profile = simmr_cluster::estimate_profile(&model, &ClusterConfig::paper_testbed());
        let est = simmr_model::estimate_completion(&profile, 64, 64).predicted() as u64;
        let rel = rng.uniform_u64(est, 2 * est.max(1));
        jobs.push((model, clock, Some(clock + rel)));
        // the paper's validation jobs run mostly in isolation: space the
        // arrivals so queueing delay doesn't mask per-job modeling error
        clock += rng.uniform_u64(400_000, 900_000);
    }
    jobs
}

fn policy_pair(p: ClusterPolicy) -> &'static str {
    match p {
        ClusterPolicy::Fifo => "fifo",
        ClusterPolicy::MaxEdf => "maxedf",
        ClusterPolicy::MinEdf => "minedf",
    }
}

/// Aggregates rows per application (mean actual + mean error).
fn per_app(rows: &[AccuracyRow]) -> Vec<(String, f64, f64)> {
    let mut apps: Vec<String> =
        rows.iter().map(|r| r.name.split('-').next().unwrap_or(&r.name).to_string()).collect();
    apps.sort();
    apps.dedup();
    apps.into_iter()
        .map(|app| {
            let mine: Vec<&AccuracyRow> =
                rows.iter().filter(|r| r.name.starts_with(&app)).collect();
            let actual = mine.iter().map(|r| r.actual_ms as f64).sum::<f64>() / mine.len() as f64;
            let err = mine.iter().map(|r| r.error_pct()).sum::<f64>() / mine.len() as f64;
            (app, actual / 1000.0, err)
        })
        .collect()
}

fn main() {
    let config = ClusterConfig::paper_testbed();
    for (panel, policy) in
        [("a", ClusterPolicy::Fifo), ("b", ClusterPolicy::MinEdf), ("c", ClusterPolicy::MaxEdf)]
    {
        let jobs = workload(0x515 + panel.as_bytes()[0] as u64);
        let deadlines: Vec<Option<SimTime>> = jobs.iter().map(|(_, _, d)| *d).collect();
        // For MinEDF, both sides must size allocations from the same
        // profile source (the paper's shared ARIA profile database): feed
        // SimMR's MinEDF the allocations the testbed derived.
        let presets: std::collections::HashMap<simmr_types::JobId, simmr_model::SlotAllocation> =
            jobs.iter()
                .enumerate()
                .filter_map(|(i, (model, arrival, deadline))| {
                    deadline.map(|d| {
                        let profile = simmr_cluster::estimate_profile(model, &config);
                        let alloc = simmr_model::min_slots_for_deadline(
                            &profile,
                            d.since(*arrival),
                            64,
                            64,
                        );
                        (simmr_types::JobId(i as u32), alloc)
                    })
                })
                .collect();
        let run = run_testbed(jobs, policy, config, 0xACC0 + panel.as_bytes()[0] as u64);
        let simmr = if policy == ClusterPolicy::MinEdf {
            replay_in_simmr_with(
                &run.history,
                Box::new(simmr_sched::MinEdfPolicy::with_presets(presets)),
                64,
                64,
                &deadlines,
            )
        } else {
            replay_in_simmr(&run.history, policy_pair(policy), 64, 64, &deadlines)
        };
        let simmr_rows = accuracy_rows(&run, &simmr);

        println!("\n== Figure 5({panel}): {} ==", policy.name());
        let mumak_rows = if policy == ClusterPolicy::Fifo {
            let mumak = replay_in_mumak(&run.history, MumakConfig::default());
            Some(accuracy_rows(&run, &mumak))
        } else {
            None
        };

        println!("{:<12} {:>10} {:>11} {:>11}", "app", "actual_s", "simmr_err%", "mumak_err%");
        let mut rows = Vec::new();
        let simmr_apps_agg = per_app(&simmr_rows);
        let mumak_apps_agg = mumak_rows.as_deref().map(per_app);
        for (i, (app, actual, err)) in simmr_apps_agg.iter().enumerate() {
            let mumak_err = mumak_apps_agg
                .as_ref()
                .map(|m| format!("{:+11.2}", m[i].2))
                .unwrap_or_else(|| format!("{:>11}", "-"));
            println!("{app:<12} {actual:>10.1} {err:>+11.2} {mumak_err}");
            rows.push(format!(
                "{app},{actual},{err},{}",
                mumak_apps_agg.as_ref().map(|m| m[i].2.to_string()).unwrap_or_default()
            ));
        }
        println!(
            "SimMR: avg |err| {:.2}%  max |err| {:.2}%",
            mean_abs_error(&simmr_rows),
            max_abs_error(&simmr_rows)
        );
        if let Some(m) = &mumak_rows {
            println!(
                "Mumak: avg |err| {:.2}%  max |err| {:.2}%  (underestimates: {}/{})",
                mean_abs_error(m),
                max_abs_error(m),
                m.iter().filter(|r| r.error_pct() < 0.0).count(),
                m.len()
            );
        }
        write_csv(
            &format!("fig5{panel}_accuracy_{}", policy.name()),
            "app,actual_s,simmr_err_pct,mumak_err_pct",
            &rows,
        );
    }
    // a sanity line used by EXPERIMENTS.md
    let t = simmr_bench::suite_models(&[1])[0].clone();
    let profile = simmr_cluster::estimate_profile(&t, &config);
    let est = simmr_model::estimate_completion(&profile, 64, 64).predicted();
    let mut trace = simmr_types::WorkloadTrace::new("sanity", "fig5");
    trace.push(simmr_types::JobSpec::new(
        simmr_types::JobTemplate::new("sanity", vec![1000; 4], vec![], vec![], vec![]).unwrap(),
        SimTime::ZERO,
    ));
    let _ = standalone_runtime_ms(&trace.jobs[0].template, 4, 4);
    eprintln!("[model] WordCount-40GB predicted standalone: {:.1}s", est / 1000.0);
}
