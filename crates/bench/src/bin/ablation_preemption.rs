//! Ablation: task preemption vs the Figure 7(a) "bump".
//!
//! §V-B: *"There is a slight 'bump' around the mean arrival time of 100s.
//! On closer inspection we found that this is caused because the scheduler
//! does not pre-empt tasks themselves."* We add kill-and-requeue map
//! preemption to MaxEDF (`maxedf-p`) and rerun the Figure 7(a) sweep: if
//! the paper's diagnosis is right, the preemptive variant should flatten
//! the bump (at the cost of wasted, re-executed work).

use simmr_bench::csvout::write_csv;
use simmr_bench::workloads::{assign_deadlines, permute_with_exponential_arrivals};
use simmr_cluster::{ClusterConfig, ClusterPolicy, ClusterSim};
use simmr_serve::{ScenarioSpec, SimFacade, TraceRef};
use simmr_stats::SeededRng;
use simmr_trace::profile_history;
use simmr_types::{JobSpec, JobTemplate, SimTime, WorkloadTrace};

fn reps() -> usize {
    std::env::var("SIMMR_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(200)
}

fn suite_templates() -> Vec<JobTemplate> {
    let mut out = Vec::new();
    for (i, model) in simmr_bench::suite_models(&[0, 1, 2]).into_iter().enumerate() {
        let mut sim =
            ClusterSim::new(ClusterConfig::paper_testbed(), ClusterPolicy::Fifo, 0xAB7 + i as u64);
        sim.submit(model, SimTime::ZERO, None);
        let run = sim.run();
        out.push(profile_history(&run.history).expect("profiles")[0].template.clone());
    }
    out
}

fn one_run(templates: &[JobTemplate], mean_ia_ms: f64, policy: &str, seed: u64) -> f64 {
    let mut rng = SeededRng::new(seed);
    let mut trace = WorkloadTrace::new("preemption", "ablation");
    for t in templates {
        trace.push(JobSpec::new(t.clone(), SimTime::ZERO));
    }
    permute_with_exponential_arrivals(&mut trace, mean_ia_ms, &mut rng);
    assign_deadlines(&mut trace, 1.0, 64, 64, &mut rng);
    // deadlines are stamped above, so the spec carries no deadline_factor
    let spec = ScenarioSpec::new(TraceRef::Inline(trace), policy.parse().expect("policy exists"));
    SimFacade::new().run(&spec).expect("scenario runs").report.total_relative_deadline_exceeded()
}

fn average(templates: &[JobTemplate], mean_ia_ms: f64, policy: &str, reps: usize) -> f64 {
    simmr_bench::parallel_mean(reps, |r| {
        one_run(templates, mean_ia_ms, policy, 0xAB7_0000 + r as u64 * 31)
    })
}

fn main() {
    eprintln!("[preemption] profiling suite jobs ...");
    let templates = suite_templates();
    let reps = reps();
    eprintln!("[preemption] {reps} repetitions per point (df = 1, the Figure 7a setup)");

    println!("{:>12} {:>14} {:>16} {:>9}", "mean_ia_s", "maxedf", "maxedf_preempt", "change%");
    let mut rows = Vec::new();
    for &ia in &[1.0e3, 1.0e4, 1.0e5, 1.0e6, 1.0e7] {
        let plain = average(&templates, ia, "maxedf", reps);
        let preempt = average(&templates, ia, "maxedf-p", reps);
        let change = if plain > 0.0 { (preempt / plain - 1.0) * 100.0 } else { 0.0 };
        println!("{:>12.0} {:>14.2} {:>16.2} {:>+9.1}", ia / 1000.0, plain, preempt, change);
        rows.push(format!("{},{plain},{preempt}", ia / 1000.0));
    }
    write_csv("ablation_preemption", "mean_interarrival_s,maxedf,maxedf_preemptive", &rows);
    println!(
        "\nThe paper's diagnosis predicts the largest improvement at ~100 s mean\n\
         inter-arrival (the bump), shrinking elsewhere; preemption trades the\n\
         improvement against re-executed (killed) work at high arrival rates."
    );
}
