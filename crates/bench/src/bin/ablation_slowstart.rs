//! Ablation: sensitivity to `minMapPercentCompleted` (the engine's
//! slowstart parameter, §III-B). Early reduce launch holds reduce slots as
//! first-wave fillers (hurting concurrent jobs) but hides the first
//! shuffle inside the map stage (helping the job itself).

use simmr_bench::csvout::write_csv;
use simmr_core::{EngineConfig, SimulatorEngine};
use simmr_sched::FifoPolicy;
use simmr_trace::FacebookWorkload;

fn main() {
    let trace = FacebookWorkload { mean_interarrival_ms: 20_000.0 }.generate(120, 0x510);
    println!("== Ablation: slowstart (minMapPercentCompleted) ==");
    println!("{:>10} {:>14} {:>16} {:>12}", "slowstart", "makespan_s", "mean_job_dur_s", "events");
    let mut rows = Vec::new();
    for slowstart in [0.0, 0.05, 0.25, 0.5, 1.0] {
        let config = EngineConfig::new(32, 32).with_slowstart(slowstart);
        let report = SimulatorEngine::new(config, &trace, Box::new(FifoPolicy::new())).run();
        println!(
            "{:>10.2} {:>14.1} {:>16.1} {:>12}",
            slowstart,
            report.makespan.as_secs_f64(),
            report.mean_duration_ms() / 1000.0,
            report.events_processed
        );
        rows.push(format!(
            "{slowstart},{},{},{}",
            report.makespan.as_millis(),
            report.mean_duration_ms(),
            report.events_processed
        ));
    }
    write_csv("ablation_slowstart", "slowstart,makespan_ms,mean_dur_ms,events", &rows);
    println!(
        "\nLow slowstart overlaps the first shuffle with the map stage (shorter\n\
         individual jobs) at the cost of reduce slots held by filler tasks."
    );
}
