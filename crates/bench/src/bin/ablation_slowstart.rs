//! Ablation: sensitivity to `minMapPercentCompleted` (the engine's
//! slowstart parameter, §III-B). Early reduce launch holds reduce slots as
//! first-wave fillers (hurting concurrent jobs) but hides the first
//! shuffle inside the map stage (helping the job itself).
//!
//! The sweep is a batch of `ScenarioSpec`s run through the `simmr-serve`
//! facade — the same code path the CLI and the what-if service use.

use simmr_bench::csvout::write_csv;
use simmr_sched::PolicySpec;
use simmr_serve::{ScenarioSpec, SimFacade, TraceRef};
use simmr_trace::FacebookWorkload;
use simmr_types::ClusterSpec;

const SLOWSTARTS: [f64; 5] = [0.0, 0.05, 0.25, 0.5, 1.0];

fn main() {
    let trace = FacebookWorkload { mean_interarrival_ms: 20_000.0 }.generate(120, 0x510);
    println!("== Ablation: slowstart (minMapPercentCompleted) ==");
    println!("{:>10} {:>14} {:>16} {:>12}", "slowstart", "makespan_s", "mean_job_dur_s", "events");
    let specs: Vec<ScenarioSpec> = SLOWSTARTS
        .iter()
        .map(|&slowstart| {
            let mut spec = ScenarioSpec::new(TraceRef::Inline(trace.clone()), PolicySpec::Fifo);
            spec.cluster = ClusterSpec::new(32, 32);
            spec.slowstart = Some(slowstart);
            spec
        })
        .collect();
    let runs = SimFacade::new().run_batch(&specs);
    let mut rows = Vec::new();
    for (slowstart, run) in SLOWSTARTS.iter().zip(runs) {
        let report = run.expect("slowstart scenario runs").report;
        println!(
            "{:>10.2} {:>14.1} {:>16.1} {:>12}",
            slowstart,
            report.makespan.as_secs_f64(),
            report.mean_duration_ms() / 1000.0,
            report.events_processed
        );
        rows.push(format!(
            "{slowstart},{},{},{}",
            report.makespan.as_millis(),
            report.mean_duration_ms(),
            report.events_processed
        ));
    }
    write_csv("ablation_slowstart", "slowstart,makespan_ms,mean_dur_ms,events", &rows);
    println!(
        "\nLow slowstart overlaps the first shuffle with the map stage (shorter\n\
         individual jobs) at the cost of reduce slots held by filler tasks."
    );
}
