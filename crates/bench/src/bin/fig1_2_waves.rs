//! Figures 1 & 2 (§II): WordCount with 200 map / 256 reduce tasks run with
//! 128×128 and 64×64 slots — the task-progress timelines showing 2 vs 4
//! map/reduce waves and the first-shuffle overlap with the map stage.
//!
//! The job runs on the testbed simulator (the paper's modified FIFO that
//! grants a requested slot count); the printed series is `time -> number of
//! tasks in each phase`, i.e. exactly the curves of the figures. A CSV per
//! configuration lands in `experiments/results/`.

use simmr_apps::{AppKind, JobModel};
use simmr_bench::csvout::write_csv;
use simmr_cluster::{ClusterConfig, ClusterPolicy, ClusterSim};
use simmr_types::{parse_history, HistoryLine, SimTime, TaskKind};

/// Phase intervals extracted from the testbed history.
struct Bars {
    maps: Vec<(u64, u64)>,
    shuffles: Vec<(u64, u64)>,
    reduces: Vec<(u64, u64)>,
}

fn extract(history: &str) -> Bars {
    let mut bars = Bars { maps: Vec::new(), shuffles: Vec::new(), reduces: Vec::new() };
    for line in parse_history(history).expect("history parses") {
        if let HistoryLine::Task(t) = line {
            match t.kind {
                TaskKind::Map => bars.maps.push((t.start.as_millis(), t.end.as_millis())),
                TaskKind::Reduce => {
                    let se = t.sort_end.unwrap_or(t.end).as_millis();
                    bars.shuffles.push((t.start.as_millis(), se));
                    bars.reduces.push((se, t.end.as_millis()));
                }
            }
        }
    }
    bars
}

fn count_running(bars: &[(u64, u64)], t: u64) -> usize {
    bars.iter().filter(|&&(s, e)| s <= t && t < e).count()
}

/// Rough wave count: maximum concurrency observed divided into total tasks.
fn waves(bars: &[(u64, u64)], slots: usize) -> usize {
    bars.len().div_ceil(slots.max(1))
}

fn run_config(slots_per_node: usize, label: &str) {
    let config = ClusterConfig {
        map_slots_per_node: slots_per_node,
        reduce_slots_per_node: slots_per_node,
        ..ClusterConfig::paper_testbed()
    };
    let total = config.total_map_slots();
    let job = JobModel::with_task_counts(AppKind::WordCount, 200, 256);
    let mut sim = ClusterSim::new(config, ClusterPolicy::Fifo, 0xF1);
    sim.submit_capped(job, SimTime::ZERO, (total, total));
    let run = sim.run();
    let bars = extract(&run.history);
    let end = run.makespan.as_millis();

    println!("\n== Figure {} : WordCount 200 maps x 256 reduces, {total}x{total} slots ==", label);
    println!(
        "map waves: {} (expected {}), reduce waves: {} (expected {})",
        waves(&bars.maps, total),
        200usize.div_ceil(total),
        waves(&bars.shuffles, total),
        256usize.div_ceil(total)
    );
    println!("{:>8} {:>6} {:>8} {:>7}", "t_s", "map", "shuffle", "reduce");
    let mut rows = Vec::new();
    let step = (end / 40).max(1);
    let mut t = 0;
    while t <= end {
        let m = count_running(&bars.maps, t);
        let s = count_running(&bars.shuffles, t);
        let r = count_running(&bars.reduces, t);
        println!("{:>8.1} {:>6} {:>8} {:>7}", t as f64 / 1000.0, m, s, r);
        rows.push(format!("{},{},{},{}", t, m, s, r));
        t += step;
    }
    write_csv(&format!("fig{}_wordcount_{total}x{total}", label), "t_ms,map,shuffle,reduce", &rows);
}

fn main() {
    run_config(2, "1"); // 128x128 (Figure 1): 2 map + 2 reduce waves
    run_config(1, "2"); // 64x64 (Figure 2): 4 map + 4 reduce waves
}
