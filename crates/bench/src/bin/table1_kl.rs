//! Table I (§II): symmetric Kullback–Leibler divergence between the
//! task-duration distributions of different executions of the same
//! application (10 pairwise comparisons over 5 executions), per phase —
//! plus the cross-application comparison from the accompanying text.
//!
//! Paper's finding: same-application KL values are small (map ≤ 0.2,
//! shuffle ≤ ~4.4, reduce ≤ 0.73) while cross-application values are an
//! order of magnitude larger (≥ 7), so any single execution is a valid
//! replay representative.

use simmr_apps::AppKind;
use simmr_bench::csvout::write_csv;
use simmr_cluster::{ClusterConfig, ClusterPolicy, ClusterSim};
use simmr_stats::{kl::symmetric_kl_ms, KlOptions};
use simmr_trace::profile_history;
use simmr_types::{JobTemplate, SimTime};

const EXECUTIONS: usize = 5;

fn execute(kind: AppKind, seed: u64) -> JobTemplate {
    let model = kind.model().instantiate(&simmr_apps::catalog::datasets_for(kind)[1]);
    let mut sim = ClusterSim::new(ClusterConfig::paper_testbed(), ClusterPolicy::Fifo, seed);
    sim.submit(model, SimTime::ZERO, None);
    let run = sim.run();
    profile_history(&run.history).expect("history profiles")[0].template.clone()
}

fn min_avg_max(values: &[f64]) -> (f64, f64, f64) {
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(0.0f64, f64::max);
    let avg = values.iter().sum::<f64>() / values.len().max(1) as f64;
    (min, avg, max)
}

fn pairwise_kl(samples: &[Vec<u64>]) -> Vec<f64> {
    let mut out = Vec::new();
    for i in 0..samples.len() {
        for j in (i + 1)..samples.len() {
            out.push(symmetric_kl_ms(&samples[i], &samples[j], KlOptions::default()));
        }
    }
    out
}

fn main() {
    println!("== Table I: symmetric KL divergence across executions of the same application ==");
    println!(
        "{:<12} {:>6} {:>6} {:>6}   {:>7} {:>7} {:>7}   {:>6} {:>6} {:>6}",
        "Application",
        "MapMin",
        "MapAvg",
        "MapMax",
        "ShMin",
        "ShAvg",
        "ShMax",
        "RedMin",
        "RedAvg",
        "RedMax"
    );
    let mut rows = Vec::new();
    let mut representatives: Vec<(AppKind, JobTemplate)> = Vec::new();
    for (a, kind) in AppKind::ALL.into_iter().enumerate() {
        let templates: Vec<JobTemplate> =
            (0..EXECUTIONS).map(|e| execute(kind, 0x7AB1 + (a * 10 + e) as u64)).collect();
        let maps: Vec<Vec<u64>> = templates.iter().map(|t| t.map_durations.clone()).collect();
        let shuffles: Vec<Vec<u64>> =
            templates.iter().map(|t| t.typical_shuffle_durations.clone()).collect();
        let reduces: Vec<Vec<u64>> = templates.iter().map(|t| t.reduce_durations.clone()).collect();
        let (m0, m1, m2) = min_avg_max(&pairwise_kl(&maps));
        let (s0, s1, s2) = min_avg_max(&pairwise_kl(&shuffles));
        let (r0, r1, r2) = min_avg_max(&pairwise_kl(&reduces));
        println!(
            "{:<12} {:>6.2} {:>6.2} {:>6.2}   {:>7.2} {:>7.2} {:>7.2}   {:>6.2} {:>6.2} {:>6.2}",
            kind.full_name(),
            m0,
            m1,
            m2,
            s0,
            s1,
            s2,
            r0,
            r1,
            r2
        );
        rows.push(format!("{},{m0},{m1},{m2},{s0},{s1},{s2},{r0},{r1},{r2}", kind.full_name()));
        representatives.push((kind, templates.into_iter().next().unwrap()));
    }
    write_csv(
        "table1_kl_same_app",
        "app,map_min,map_avg,map_max,sh_min,sh_avg,sh_max,red_min,red_avg,red_max",
        &rows,
    );

    // cross-application comparison (the paragraph below Table I)
    let mut cross_map = Vec::new();
    let mut cross_sh = Vec::new();
    let mut cross_red = Vec::new();
    for i in 0..representatives.len() {
        for j in (i + 1)..representatives.len() {
            let (a, b) = (&representatives[i].1, &representatives[j].1);
            cross_map.push(symmetric_kl_ms(
                &a.map_durations,
                &b.map_durations,
                KlOptions::default(),
            ));
            cross_sh.push(symmetric_kl_ms(
                &a.typical_shuffle_durations,
                &b.typical_shuffle_durations,
                KlOptions::default(),
            ));
            cross_red.push(symmetric_kl_ms(
                &a.reduce_durations,
                &b.reduce_durations,
                KlOptions::default(),
            ));
        }
    }
    let (m0, m1, m2) = min_avg_max(&cross_map);
    let (s0, s1, s2) = min_avg_max(&cross_sh);
    let (r0, r1, r2) = min_avg_max(&cross_red);
    println!("\n== Cross-application KL (min/avg/max), paper: map (7.34, 11.56, 13.25), shuffle (11.31, 13.05, 13.49), reduce (9.11, 12.66, 13.30) ==");
    println!("map     ({m0:.2}, {m1:.2}, {m2:.2})");
    println!("shuffle ({s0:.2}, {s1:.2}, {s2:.2})");
    println!("reduce  ({r0:.2}, {r1:.2}, {r2:.2})");
    write_csv(
        "table1_kl_cross_app",
        "phase,min,avg,max",
        &[
            format!("map,{m0},{m1},{m2}"),
            format!("shuffle,{s0},{s1},{s2}"),
            format!("reduce,{r0},{r1},{r2}"),
        ],
    );
}
