//! # simmr-bench
//!
//! The experiment harness: shared plumbing for regenerating every table and
//! figure of the paper. Each figure/table has a binary in `src/bin/`
//! (`fig1_2_waves`, `fig3_cdfs`, `table1_kl`, `fig5_accuracy`, `fig6_perf`,
//! `fig7_real_edf`, `fig8_facebook_edf`), and the Criterion benches in
//! `benches/` cover the performance claims (engine throughput, SimMR vs
//! Mumak replay speed).
//!
//! The central abstraction is the validation [`pipeline`]: execute jobs on
//! the fine-grained testbed (`simmr-cluster`), profile its history logs
//! with MRProfiler, replay the extracted trace in SimMR and in Mumak, and
//! compare the three completion times — exactly the paper's §IV
//! methodology.

pub mod csvout;
pub mod pipeline;
pub mod plot;
pub mod workloads;

pub use pipeline::{mean_abs_error, replay_in_mumak, replay_in_simmr, run_testbed, AccuracyRow};
// The sweep fan-out moved down into `simmr-stats` so the serve layer can
// batch scenarios without depending on the harness; re-exported here to
// keep the historical `simmr_bench::parallel_sweep` path working.
pub use simmr_stats::par;
pub use simmr_stats::{parallel_mean, parallel_sweep};
pub use workloads::{assign_deadlines, standalone_runtime_ms, suite_models};
