//! Workload construction shared by the experiment binaries.

use simmr_core::{EngineConfig, SimulatorEngine};
use simmr_sched::FifoPolicy;
use simmr_stats::{Dist, Distribution, SeededRng};
use simmr_types::{DurationMs, JobSpec, JobTemplate, SimTime, WorkloadTrace};

/// The 18 application-on-dataset job models of §IV-C (6 apps × 3 datasets),
/// or a subset by dataset index.
pub fn suite_models(datasets: &[usize]) -> Vec<simmr_apps::JobModel> {
    simmr_apps::standard_suite(datasets)
}

/// The completion time `T_J` of a job template given **all** the cluster
/// resources, computed by a standalone SimMR run (used as the deadline
/// baseline in §V-B).
pub fn standalone_runtime_ms(
    template: &JobTemplate,
    map_slots: usize,
    reduce_slots: usize,
) -> DurationMs {
    let mut trace = WorkloadTrace::new("standalone", "harness");
    trace.push(JobSpec::new(template.clone(), SimTime::ZERO));
    let report = SimulatorEngine::new(
        EngineConfig::new(map_slots, reduce_slots),
        &trace,
        Box::new(FifoPolicy::new()),
    )
    .run();
    report.jobs[0].duration()
}

/// Assigns §V-B-style deadlines in place: each job's deadline is uniform in
/// `[T_J, df · T_J]` after its arrival, where `T_J` is the job's
/// standalone (all-slots) runtime. Returns the per-job absolute deadlines.
pub fn assign_deadlines(
    trace: &mut WorkloadTrace,
    deadline_factor: f64,
    map_slots: usize,
    reduce_slots: usize,
    rng: &mut SeededRng,
) -> Vec<Option<SimTime>> {
    assert!(deadline_factor >= 1.0, "deadline factor must be >= 1");
    let mut out = Vec::with_capacity(trace.jobs.len());
    for job in trace.jobs.iter_mut() {
        let t_j = standalone_runtime_ms(&job.template, map_slots, reduce_slots) as f64;
        let rel = rng.uniform(t_j, deadline_factor * t_j).max(t_j);
        let deadline = job.arrival + rel as DurationMs;
        job.deadline = Some(deadline);
        out.push(Some(deadline));
    }
    out
}

/// Randomly permutes job order and re-draws exponential arrivals with the
/// given mean (the §V-B workload construction: *"an equally probable random
/// permutation of arrival of these jobs ... inter-arrival time of the jobs
/// is exponential"*).
pub fn permute_with_exponential_arrivals(
    trace: &mut WorkloadTrace,
    mean_interarrival_ms: f64,
    rng: &mut SeededRng,
) {
    rng.shuffle(&mut trace.jobs);
    let dist = Dist::Exponential { mean: mean_interarrival_ms.max(0.0) };
    let mut clock = SimTime::ZERO;
    for job in trace.jobs.iter_mut() {
        job.arrival = clock;
        if mean_interarrival_ms > 0.0 {
            clock += dist.sample(rng).max(0.0) as DurationMs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template(maps: usize, map_ms: u64) -> JobTemplate {
        JobTemplate::new("t", vec![map_ms; maps], vec![10], vec![20; 2], vec![30; 2]).unwrap()
    }

    #[test]
    fn standalone_runtime_matches_wave_math() {
        // 8 maps of 1000ms on 4 slots = 2 waves = 2000ms, plus reduces
        let t = template(8, 1000);
        let rt = standalone_runtime_ms(&t, 4, 4);
        assert!(rt >= 2000, "{rt}");
        // map-only exact check
        let t = JobTemplate::new("m", vec![1000; 8], vec![], vec![], vec![]).unwrap();
        assert_eq!(standalone_runtime_ms(&t, 4, 4), 2000);
        assert_eq!(standalone_runtime_ms(&t, 8, 8), 1000);
    }

    #[test]
    fn deadlines_in_band() {
        let mut trace = WorkloadTrace::new("t", "test");
        for i in 0..20 {
            trace.push(JobSpec::new(template(4, 500), SimTime::from_secs(i)));
        }
        let mut rng = SeededRng::new(1);
        let deadlines = assign_deadlines(&mut trace, 3.0, 4, 4, &mut rng);
        for (job, d) in trace.jobs.iter().zip(&deadlines) {
            let d = d.unwrap();
            let t_j = standalone_runtime_ms(&job.template, 4, 4);
            let rel = d.since(job.arrival);
            assert!(rel >= t_j, "deadline below standalone runtime");
            assert!(rel <= 3 * t_j + 1, "deadline above df*T_J");
            assert_eq!(job.deadline, Some(d));
        }
    }

    #[test]
    fn df_one_pins_deadline_to_runtime() {
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(JobSpec::new(template(4, 500), SimTime::ZERO));
        let mut rng = SeededRng::new(2);
        let deadlines = assign_deadlines(&mut trace, 1.0, 4, 4, &mut rng);
        let t_j = standalone_runtime_ms(&trace.jobs[0].template, 4, 4);
        assert_eq!(deadlines[0].unwrap().as_millis(), t_j);
    }

    #[test]
    fn permutation_rewrites_arrivals() {
        let mut trace = WorkloadTrace::new("t", "test");
        for i in 0..50 {
            trace.push(JobSpec::new(template(1 + i % 3, 100), SimTime::from_secs(999)));
        }
        let mut rng = SeededRng::new(3);
        permute_with_exponential_arrivals(&mut trace, 10_000.0, &mut rng);
        assert_eq!(trace.jobs[0].arrival, SimTime::ZERO);
        let mut prev = SimTime::ZERO;
        for job in &trace.jobs {
            assert!(job.arrival >= prev);
            prev = job.arrival;
        }
        // mean gap should be in the vicinity of 10s
        let span = trace.last_arrival().unwrap().as_millis() as f64 / 49.0;
        assert!((span / 10_000.0 - 1.0).abs() < 0.5, "mean gap {span}");
    }

    #[test]
    fn suite_has_expected_shape() {
        assert_eq!(suite_models(&[0, 1, 2]).len(), 18);
        assert_eq!(suite_models(&[1]).len(), 6);
    }
}
