//! Trace-tooling performance: MRProfiler parsing, synthetic generation,
//! and the Table-I KL computation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use simmr_cluster::{ClusterConfig, ClusterPolicy, ClusterSim};
use simmr_stats::{kl::symmetric_kl_ms, KlOptions};
use simmr_trace::{profile_history, FacebookWorkload};
use simmr_types::SimTime;

fn testbed_history() -> String {
    let mut sim = ClusterSim::new(ClusterConfig::tiny(16), ClusterPolicy::Fifo, 0x77);
    for (i, model) in simmr_apps::standard_suite(&[0]).into_iter().enumerate() {
        let mut m = model;
        // shrink for the benchmark: a few hundred tasks per job
        m.num_maps = 200;
        sim.submit(m, SimTime::from_secs(i as u64 * 30), None);
    }
    sim.run().history
}

fn bench_profiler(c: &mut Criterion) {
    let history = testbed_history();
    let mut group = c.benchmark_group("trace_tools");
    group.throughput(Throughput::Bytes(history.len() as u64));
    group.bench_function("mrprofiler_parse", |b| {
        b.iter(|| profile_history(&history).expect("history parses"))
    });
    group.finish();
}

fn bench_synthetic(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_tools");
    group.bench_function("facebook_generate_500_jobs", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            FacebookWorkload { mean_interarrival_ms: 1_000.0 }.generate(500, seed)
        })
    });
    group.finish();
}

fn bench_kl(c: &mut Criterion) {
    let trace = FacebookWorkload { mean_interarrival_ms: 0.0 }.generate(100, 3);
    let a: Vec<u64> = trace.jobs.iter().flat_map(|j| j.template.map_durations.clone()).collect();
    let trace = FacebookWorkload { mean_interarrival_ms: 0.0 }.generate(100, 4);
    let b: Vec<u64> = trace.jobs.iter().flat_map(|j| j.template.map_durations.clone()).collect();
    let mut group = c.benchmark_group("trace_tools");
    group.throughput(Throughput::Elements((a.len() + b.len()) as u64));
    group.bench_function("symmetric_kl", |bch| {
        bch.iter(|| symmetric_kl_ms(&a, &b, KlOptions::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_profiler, bench_synthetic, bench_kl);
criterion_main!(benches);
