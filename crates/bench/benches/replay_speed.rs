//! SimMR vs Mumak replay speed on identical traces (the Figure 6 claim as
//! a Criterion benchmark; the `fig6_perf` binary prints the full sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simmr_core::{EngineConfig, SimulatorEngine};
use simmr_mumak::{MumakConfig, MumakSim};
use simmr_sched::FifoPolicy;
use simmr_trace::{FacebookWorkload, RumenTrace};

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_speed");
    group.sample_size(20);
    for jobs in [50usize, 150] {
        let trace = FacebookWorkload { mean_interarrival_ms: 15_000.0 }.generate(jobs, 0x6F);
        let rumen = RumenTrace::from_workload(&trace);
        group.bench_with_input(BenchmarkId::new("simmr", jobs), &trace, |b, trace| {
            b.iter(|| {
                SimulatorEngine::new(EngineConfig::new(64, 64), trace, Box::new(FifoPolicy::new()))
                    .run()
            })
        });
        group.bench_with_input(BenchmarkId::new("mumak", jobs), &rumen, |b, rumen| {
            let sim = MumakSim::new(MumakConfig::default());
            b.iter(|| sim.run(rumen))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
