//! The §I performance claim: "SimMR can process over one million events
//! per second." Measures the engine event loop on realistic traces and
//! reports throughput in events/second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simmr_core::{EngineConfig, SimulatorEngine};
use simmr_sched::{parse_policy, FifoPolicy};
use simmr_trace::FacebookWorkload;

fn trace_of(jobs: usize) -> simmr_types::WorkloadTrace {
    FacebookWorkload { mean_interarrival_ms: 10_000.0 }.generate(jobs, 0xBE)
}

fn events_in(trace: &simmr_types::WorkloadTrace) -> u64 {
    SimulatorEngine::new(EngineConfig::new(64, 64), trace, Box::new(FifoPolicy::new()))
        .run()
        .events_processed
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    // 2k and 10k probe the incremental queue's scaling: per-event cost
    // must stay flat as the number of concurrently active jobs grows
    for jobs in [50usize, 200, 500, 2_000, 10_000] {
        let trace = trace_of(jobs);
        let events = events_in(&trace);
        group.throughput(Throughput::Elements(events));
        group.bench_with_input(BenchmarkId::new("fifo", jobs), &trace, |b, trace| {
            b.iter(|| {
                SimulatorEngine::new(EngineConfig::new(64, 64), trace, Box::new(FifoPolicy::new()))
                    .run()
            })
        });
        if jobs == 2_000 {
            // the incremental share view must keep the tree walk flat in
            // the backlog depth too, not just the fifo queue scan
            group.bench_with_input(BenchmarkId::new("hier", jobs), &trace, |b, trace| {
                b.iter(|| {
                    SimulatorEngine::new(
                        EngineConfig::new(64, 64),
                        trace,
                        parse_policy("hier:prod[w=3,min=4]{etl,serving},adhoc[w=1]")
                            .expect("policy"),
                    )
                    .run()
                })
            });
        }
        if jobs == 2_000 || jobs == 10_000 {
            // the incremental deadline index must keep EDF picks flat in
            // the backlog depth (the full-scan versions were O(n) here)
            for policy in ["maxedf", "minedf"] {
                group.bench_with_input(BenchmarkId::new(policy, jobs), &trace, |b, trace| {
                    b.iter(|| {
                        SimulatorEngine::new(
                            EngineConfig::new(64, 64),
                            trace,
                            parse_policy(policy).expect("policy"),
                        )
                        .run()
                    })
                });
            }
        }
    }
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let trace = trace_of(200);
    let events = events_in(&trace);
    let mut group = c.benchmark_group("engine_by_policy");
    group.throughput(Throughput::Elements(events));
    for policy in ["fifo", "maxedf", "minedf", "fair"] {
        group.bench_function(policy, |b| {
            b.iter(|| {
                SimulatorEngine::new(
                    EngineConfig::new(64, 64),
                    &trace,
                    parse_policy(policy).expect("policy"),
                )
                .run()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_throughput, bench_policies);
criterion_main!(benches);
