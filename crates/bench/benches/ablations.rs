//! Performance ablations for the design choices DESIGN.md calls out:
//! engine scheduling-batch cost under backlog, cluster heartbeat-interval
//! sensitivity, and the shuffle fluid model's event overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simmr_cluster::{ClusterConfig, ClusterPolicy, ClusterSim};
use simmr_core::{EngineConfig, SimulatorEngine};
use simmr_sched::FifoPolicy;
use simmr_trace::FacebookWorkload;
use simmr_types::SimTime;

/// Engine cost as the arrival rate (and therefore active-job backlog)
/// grows: the per-decision snapshot is O(active jobs), so backlog is the
/// engine's main scaling hazard.
fn bench_backlog(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_backlog");
    group.sample_size(20);
    for mean_ia in [60_000.0f64, 6_000.0, 600.0] {
        let trace = FacebookWorkload { mean_interarrival_ms: mean_ia }.generate(120, 0xAB);
        group.bench_with_input(
            BenchmarkId::new("mean_ia_ms", mean_ia as u64),
            &trace,
            |b, trace| {
                b.iter(|| {
                    SimulatorEngine::new(
                        EngineConfig::new(32, 32),
                        trace,
                        Box::new(FifoPolicy::new()),
                    )
                    .run()
                })
            },
        );
    }
    group.finish();
}

/// Testbed cost versus heartbeat interval: halving the interval roughly
/// doubles the event count (the Mumak lesson in miniature).
fn bench_heartbeat(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_heartbeat");
    group.sample_size(10);
    for hb in [300u64, 600, 1200] {
        group.bench_with_input(BenchmarkId::new("hb_ms", hb), &hb, |b, &hb| {
            b.iter(|| {
                let config = ClusterConfig { heartbeat_ms: hb, ..ClusterConfig::tiny(8) };
                let mut sim = ClusterSim::new(config, ClusterPolicy::Fifo, hb);
                let mut job =
                    simmr_apps::JobModel::with_task_counts(simmr_apps::AppKind::WordCount, 64, 16);
                job.map_time_s = simmr_stats::Dist::Constant { value: 5.0 };
                job.reduce_time_s = simmr_stats::Dist::Constant { value: 2.0 };
                sim.submit(job, SimTime::ZERO, None);
                sim.run()
            })
        });
    }
    group.finish();
}

/// Shuffle fluid-model overhead: shuffle-heavy vs shuffle-free testbed runs.
fn bench_shuffle_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_shuffle_model");
    group.sample_size(10);
    for (label, mb) in [("no_shuffle", 0.0f64), ("heavy_shuffle", 400.0)] {
        group.bench_with_input(BenchmarkId::new("mb_per_reduce", label), &mb, |b, &mb| {
            b.iter(|| {
                let mut sim = ClusterSim::new(ClusterConfig::tiny(8), ClusterPolicy::Fifo, 0x5F);
                let mut job =
                    simmr_apps::JobModel::with_task_counts(simmr_apps::AppKind::Sort, 48, 16);
                job.map_time_s = simmr_stats::Dist::Constant { value: 3.0 };
                job.reduce_time_s = simmr_stats::Dist::Constant { value: 2.0 };
                job.shuffle_mb_per_reduce = mb;
                sim.submit(job, SimTime::ZERO, None);
                sim.run()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backlog, bench_heartbeat, bench_shuffle_model);
criterion_main!(benches);
