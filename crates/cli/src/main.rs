//! `simmr` — the SimMR-RS command-line tool.
//!
//! Subcommands mirror the workflows of the paper:
//!
//! * `generate` — Synthetic TraceGen: emit a replayable trace (Facebook
//!   LogNormal model) to a JSON file / trace database;
//! * `testbed`  — run the §IV-C application suite on the fine-grained
//!   testbed simulator and save the JobTracker-style history log;
//! * `profile`  — MRProfiler: history log → replayable trace JSON;
//! * `replay`   — replay a trace in the SimMR engine under a policy
//!   (binary traces stream through the engine without materializing);
//! * `compare`  — replay a trace under several policies and print the
//!   deadline-utility comparison (the §V case study);
//! * `trace`    — trace-database housekeeping: `convert` between JSON and
//!   the compact binary format, `store`/`list`/`remove` in a database dir;
//! * `scale`    — trace scaling (§VII future work): grow/shrink a trace;
//! * `fit`      — fit candidate distributions to a sample file and rank by
//!   the Kolmogorov–Smirnov statistic (§V-C methodology).

use simmr_core::{EngineConfig, SimulatorEngine};
use simmr_sched::parse_policy;
use simmr_stats::SeededRng;
use simmr_types::{SimTime, WorkloadTrace};
use std::process::ExitCode;

mod args;
mod commands;

use args::Args;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = Args::new(rest);
    let result = match cmd.as_str() {
        "generate" => commands::generate(&args),
        "testbed" => commands::testbed(&args),
        "profile" => commands::profile(&args),
        "replay" => commands::replay(&args),
        "compare" => commands::compare(&args),
        "trace" => commands::trace(&args),
        "scale" => commands::scale(&args),
        "stats" => commands::stats(&args),
        "fit" => commands::fit(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("simmr: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
simmr — trace-driven MapReduce simulation (SimMR-RS)

USAGE:
  simmr generate --jobs N [--mean-ia-ms MS] [--seed S] [--variants V]
                 [--format json|bin] --out TRACE.{json,bin}
  simmr testbed  [--policy fifo|maxedf|minedf] [--datasets 0,1,2] [--seed S] --out HISTORY.log
  simmr profile  HISTORY.log --out TRACE.json
  simmr replay   TRACE.{json,bin} [--policy NAME] [--pools POOLS.json]
                 [--format auto|json|bin] [--aggregate] [--map-slots N]
                 [--reduce-slots N] [--deadline-factor F --seed S] [--timeline]
                 [--check-invariants] [--hosts N] [--failures N]
                 [--failure-mtbf-s S] [--failure-recovery-s S]
                 [--speculation F] [--slowdown SIGMA]
  simmr compare  TRACE.json [--policies fifo,maxedf,minedf] [--map-slots N]
                 [--reduce-slots N] [--deadline-factor F] [--seed S]
  simmr trace    convert IN OUT [--format json|bin]
  simmr trace    store NAME FILE --db DIR [--format json|bin]
  simmr trace    list --db DIR
  simmr trace    remove NAME --db DIR
  simmr scale    TRACE.json --factor F --out SCALED.json
  simmr stats    TRACE.json         (workload characterization)
  simmr fit      SAMPLES.txt        (one duration per line)

Traces: JSON (`.json`) is human-readable; the compact binary format
(`.bin`, SIMMRBIN) interns templates and stores tens of bytes per job.
`replay` sniffs the format and *streams* binary traces through the engine
without materializing them (`--aggregate` skips per-job results, keeping
memory flat for million-job traces). `generate --variants V` draws jobs
from a bounded template pool of V variants per class, which is what makes
binary interning effective.

Policies: fifo, maxedf, minedf, fair, maxedf-p, minedf-p (preemptive),
capacity[:q1=w1,q2=w2,...] (weighted queues routed by job-name prefix), and
hier[:SPEC] (hierarchical pool tree with weights, min/max shares and
min-share preemption timeouts; e.g. `hier:prod[w=3,min=4]{etl,serving},adhoc`;
--pools POOLS.json loads the same tree from a JSON file instead).

Failure model (replay): --hosts stripes the slot pools over N workers;
--failures plans N seeded fail-stop host losses (mean interval
--failure-mtbf-s seconds, reusing --seed); --failure-recovery-s S brings
each failed host back after a seeded exponential downtime of mean S seconds;
--speculation F re-executes map stragglers past F x the job's median map
duration; --slowdown SIGMA gives each slot a LogNormal(-SIGMA^2/2, SIGMA)
execution slowdown (mean 1).";

/// Loads a trace from JSON or the binary format (sniffed by magic), with a
/// helpful error.
pub(crate) fn load_trace(path: &str) -> Result<WorkloadTrace, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let trace: WorkloadTrace = if simmr_trace::is_binary_trace(&bytes) {
        simmr_trace::decode_trace(&bytes)
            .map_err(|e| format!("`{path}` is not a valid binary trace: {e}"))?
    } else {
        let text = std::str::from_utf8(&bytes).map_err(|_| format!("`{path}` is not a trace"))?;
        serde_json::from_str(text).map_err(|e| format!("`{path}` is not a trace: {e}"))?
    };
    trace.validate().map_err(|e| format!("`{path}` contains an invalid job: {e}"))?;
    Ok(trace)
}

/// Saves a trace as JSON.
pub(crate) fn save_trace(path: &str, trace: &WorkloadTrace) -> Result<(), String> {
    let json = serde_json::to_string_pretty(trace).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("cannot write `{path}`: {e}"))
}

/// Runs one replay and prints the per-job table plus summary.
pub(crate) fn run_replay(
    trace: &WorkloadTrace,
    policy_name: &str,
    config: EngineConfig,
) -> Result<simmr_types::SimulationReport, String> {
    let policy = parse_policy(policy_name).map_err(|e| e.to_string())?;
    run_replay_with(trace, policy, config)
}

/// [`run_replay`] with an already-built policy (the `--pools FILE` path
/// constructs its [`simmr_sched::HierPolicy`] from JSON, not a spec string).
pub(crate) fn run_replay_with(
    trace: &WorkloadTrace,
    policy: Box<dyn simmr_core::SchedulerPolicy>,
    config: EngineConfig,
) -> Result<simmr_types::SimulationReport, String> {
    let start = std::time::Instant::now();
    let report = SimulatorEngine::new(config, trace, policy).run();
    let wall = start.elapsed();
    eprintln!(
        "[simmr] {} jobs, {} events in {:.3}s ({:.2}M events/s)",
        report.jobs.len(),
        report.events_processed,
        wall.as_secs_f64(),
        report.events_processed as f64 / wall.as_secs_f64().max(1e-9) / 1e6
    );
    Ok(report)
}

/// Streaming replay: pulls jobs from a [`simmr_core::JobSource`] instead of
/// a materialized trace, so resident memory stays O(active jobs).
pub(crate) fn run_replay_source(
    source: Box<dyn simmr_core::JobSource>,
    policy: Box<dyn simmr_core::SchedulerPolicy>,
    config: EngineConfig,
) -> Result<simmr_types::SimulationReport, String> {
    let jobs = source.job_count();
    let start = std::time::Instant::now();
    let report = SimulatorEngine::from_source(config, source, policy)
        .try_run()
        .map_err(|e| e.to_string())?;
    let wall = start.elapsed();
    eprintln!(
        "[simmr] streamed {} jobs, {} events in {:.3}s ({:.2}M events/s)",
        jobs,
        report.events_processed,
        wall.as_secs_f64(),
        report.events_processed as f64 / wall.as_secs_f64().max(1e-9) / 1e6
    );
    Ok(report)
}

/// Attaches §V-B-style deadlines to every job of a trace.
pub(crate) fn attach_deadlines(
    trace: &mut WorkloadTrace,
    factor: f64,
    map_slots: usize,
    reduce_slots: usize,
    seed: u64,
) {
    let mut rng = SeededRng::new(seed);
    for job in trace.jobs.iter_mut() {
        let mut single = WorkloadTrace::new("standalone", "cli");
        single.push(simmr_types::JobSpec::new(job.template.clone(), SimTime::ZERO));
        let report = SimulatorEngine::new(
            EngineConfig::new(map_slots, reduce_slots),
            &single,
            parse_policy("fifo").expect("fifo exists"),
        )
        .run();
        let t_j = report.jobs[0].duration() as f64;
        let rel = rng.uniform(t_j, factor.max(1.0) * t_j);
        job.deadline = Some(job.arrival + rel as u64);
    }
}
