//! `simmr` — the SimMR-RS command-line tool.
//!
//! Subcommands mirror the workflows of the paper:
//!
//! * `generate` — Synthetic TraceGen: emit a replayable trace (Facebook
//!   LogNormal model) to a JSON file / trace database;
//! * `testbed`  — run the §IV-C application suite on the fine-grained
//!   testbed simulator and save the JobTracker-style history log;
//! * `profile`  — MRProfiler: history log → replayable trace JSON;
//! * `replay`   — replay a trace in the SimMR engine under a policy
//!   (binary traces stream through the engine without materializing);
//! * `checkpoint` — capture (or inspect) a serialized engine checkpoint
//!   at a settled batch boundary, the seed for time-travel forks;
//! * `compare`  — replay a trace under several policies and print the
//!   deadline-utility comparison (the §V case study);
//! * `serve`    — the long-running what-if HTTP service: cached, batched
//!   scenario queries against a trace database (`simmr-serve`);
//! * `trace`    — trace-database housekeeping: `convert` between JSON and
//!   the compact binary format, `store`/`list`/`remove` in a database dir;
//! * `scale`    — trace scaling (§VII future work): grow/shrink a trace;
//! * `fit`      — fit candidate distributions to a sample file and rank by
//!   the Kolmogorov–Smirnov statistic (§V-C methodology).

use simmr_types::WorkloadTrace;
use std::process::ExitCode;

mod args;
mod commands;

use args::Args;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = Args::new(rest);
    let result = match cmd.as_str() {
        "generate" => commands::generate(&args),
        "testbed" => commands::testbed(&args),
        "profile" => commands::profile(&args),
        "replay" => commands::replay(&args),
        "checkpoint" => commands::checkpoint(&args),
        "compare" => commands::compare(&args),
        "serve" => commands::serve(&args),
        "trace" => commands::trace(&args),
        "scale" => commands::scale(&args),
        "stats" => commands::stats(&args),
        "fit" => commands::fit(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("simmr: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
simmr — trace-driven MapReduce simulation (SimMR-RS)

USAGE:
  simmr generate --jobs N [--mean-ia-ms MS] [--seed S] [--variants V]
                 [--format json|bin] --out TRACE.{json,bin}
  simmr testbed  [--policy fifo|maxedf|minedf] [--datasets 0,1,2] [--seed S] --out HISTORY.log
  simmr profile  HISTORY.log --out TRACE.json
  simmr replay   TRACE.{json,bin} [--policy NAME] [--pools POOLS.json]
                 [--format auto|json|bin] [--aggregate] [--map-slots N]
                 [--reduce-slots N] [--deadline-factor F --seed S] [--timeline]
                 [--check-invariants] [--hosts N] [--failures N]
                 [--failure-mtbf-s S] [--failure-recovery-s S]
                 [--speculation F] [--slowdown SIGMA]
                 [--fork-at MS] [--fork-policy SPEC] [--fork-add-map-slots N]
                 [--fork-add-reduce-slots N] [--fork-fault HOST[@MS]]
                 [--fork-surge TRACE.json]
  simmr checkpoint TRACE.{json,bin} --at MS --out C.ckpt [replay engine flags]
  simmr checkpoint --info C.ckpt
  simmr compare  TRACE.json [--policies fifo,maxedf,minedf] [--map-slots N]
                 [--reduce-slots N] [--deadline-factor F] [--seed S]
  simmr serve    [--addr HOST:PORT] [--db DIR] [--workers N] [--cache-cap N]
  simmr trace    convert IN OUT [--format json|bin]
  simmr trace    store NAME FILE --db DIR [--format json|bin]
  simmr trace    list --db DIR
  simmr trace    remove NAME --db DIR
  simmr scale    TRACE.json --factor F --out SCALED.json
  simmr stats    TRACE.json         (workload characterization)
  simmr fit      SAMPLES.txt        (one duration per line)

Traces: JSON (`.json`) is human-readable; the compact binary format
(`.bin`, SIMMRBIN) interns templates and stores tens of bytes per job.
`replay` sniffs the format and *streams* binary traces through the engine
without materializing them (`--aggregate` skips per-job results, keeping
memory flat for million-job traces). `generate --variants V` draws jobs
from a bounded template pool of V variants per class, which is what makes
binary interning effective.

Policies: fifo, maxedf, minedf, fair, maxedf-p, minedf-p (preemptive),
capacity[:q1=w1,q2=w2,...] (weighted queues routed by job-name prefix), and
hier[:SPEC] (hierarchical pool tree with weights, min/max shares and
min-share preemption timeouts; e.g. `hier:prod[w=3,min=4]{etl,serving},adhoc`;
--pools POOLS.json loads the same tree from a JSON file instead).

Failure model (replay): --hosts stripes the slot pools over N workers;
--failures plans N seeded fail-stop host losses (mean interval
--failure-mtbf-s seconds, reusing --seed); --failure-recovery-s S brings
each failed host back after a seeded exponential downtime of mean S seconds;
--speculation F re-executes map stragglers past F x the job's median map
duration; --slowdown SIGMA gives each slot a LogNormal(-SIGMA^2/2, SIGMA)
execution slowdown (mean 1).

Serve: `simmr serve --db DIR` answers what-if scenario queries over
HTTP/JSON (POST /v1/run, POST /v1/sweep[?stream=1], GET /v1/traces,
GET /healthz, POST /v1/shutdown). Repeated queries hit a memo cache
keyed on (trace digest, normalized scenario) and return byte-identical
reports; the `x-simmr-cache` header says `hit` or `miss`.

Time travel (replay / checkpoint / serve): --fork-at MS replays the shared
prefix once, then diverges at the first settled batch boundary at or after
MS with any mix of --fork-policy (swap the scheduler mid-run),
--fork-add-map-slots/--fork-add-reduce-slots (capacity growth),
--fork-fault HOST[@MS] (inject a fail-stop loss) and --fork-surge FILE
(splice extra arrivals). A forked run is byte-identical to running the
changed scenario from scratch. `simmr checkpoint` snapshots the prefix to
a .ckpt file (SIMMRCKP, CRC-64 sealed); the serve layer keeps the same
snapshots in a warm-start cache so a /v1/sweep over divergences runs the
prefix once (the `x-simmr-ckpt` header says `hit` or `miss`).";

/// Loads a trace from JSON or the binary format (sniffed by magic), with a
/// helpful error. Thin wrapper over the facade's loader keeping the CLI's
/// error strings.
pub(crate) fn load_trace(path: &str) -> Result<WorkloadTrace, String> {
    simmr_serve::load_trace_file(path).map_err(|e| e.message().to_string())
}

/// Saves a trace as JSON.
pub(crate) fn save_trace(path: &str, trace: &WorkloadTrace) -> Result<(), String> {
    let json = serde_json::to_string_pretty(trace).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("cannot write `{path}`: {e}"))
}

/// Prints the `[simmr]` replay timing line for a facade run.
pub(crate) fn print_run_timing(run: &simmr_serve::FacadeRun, wall: std::time::Duration) {
    eprintln!(
        "[simmr] {}{} jobs, {} events in {:.3}s ({:.2}M events/s)",
        if run.streamed { "streamed " } else { "" },
        run.jobs,
        run.report.events_processed,
        wall.as_secs_f64(),
        run.report.events_processed as f64 / wall.as_secs_f64().max(1e-9) / 1e6
    );
}
