//! Minimal `--flag value` argument parsing (no external dependencies).

/// Parsed command-line arguments: positionals plus `--key value` /
/// `--switch` flags.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    /// Parses the raw argument list (everything after the subcommand).
    pub fn new(raw: &[String]) -> Self {
        let mut args = Args::default();
        let mut i = 0;
        while i < raw.len() {
            let tok = &raw[i];
            if let Some(name) = tok.strip_prefix("--") {
                let value = raw.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    i += 1;
                }
                args.flags.push((name.to_string(), value));
            } else {
                args.positional.push(tok.clone());
            }
            i += 1;
        }
        args
    }

    /// First positional argument.
    pub fn positional(&self, index: usize) -> Option<&str> {
        self.positional.get(index).map(String::as_str)
    }

    /// Value of `--name`, if present with a value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.iter().rev().find(|(n, _)| n == name).and_then(|(_, v)| v.as_deref())
    }

    /// True when `--name` appears (with or without a value).
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    /// Parses `--name` as `T`, falling back to `default`.
    pub fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse::<T>().map_err(|_| format!("flag --{name}: cannot parse `{v}`")),
        }
    }

    /// Requires `--name VALUE`.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing required flag --{name}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn positionals_and_flags() {
        let a = Args::new(&argv("trace.json --jobs 100 --timeline --seed 7"));
        assert_eq!(a.positional(0), Some("trace.json"));
        assert_eq!(a.get("jobs"), Some("100"));
        assert!(a.has("timeline"));
        assert!(a.has("seed"));
        assert_eq!(a.get("timeline"), None);
    }

    #[test]
    fn parse_or_defaults() {
        let a = Args::new(&argv("--jobs 100"));
        assert_eq!(a.parse_or("jobs", 5usize).unwrap(), 100);
        assert_eq!(a.parse_or("seed", 42u64).unwrap(), 42);
        assert!(a.parse_or::<usize>("jobs", 0).is_ok());
        let bad = Args::new(&argv("--jobs banana"));
        assert!(bad.parse_or::<usize>("jobs", 0).is_err());
    }

    #[test]
    fn require_reports_missing() {
        let a = Args::new(&argv(""));
        assert!(a.require("out").is_err());
        let a = Args::new(&argv("--out x.json"));
        assert_eq!(a.require("out").unwrap(), "x.json");
    }

    #[test]
    fn last_flag_wins() {
        let a = Args::new(&argv("--seed 1 --seed 2"));
        assert_eq!(a.get("seed"), Some("2"));
    }
}
