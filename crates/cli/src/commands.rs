//! Subcommand implementations.

use crate::args::Args;
use crate::{load_trace, print_run_timing, save_trace};
use simmr_cluster::{ClusterConfig, ClusterPolicy, ClusterSim};
use simmr_serve::{DivergenceSpec, ScenarioSpec, ServeConfig, Server, SimFacade, TraceRef};
use simmr_stats::fit_best;
use simmr_trace::{
    encode_trace, trace_from_history, FacebookWorkload, TraceDatabase, TraceFormat, TraceStatus,
};
use simmr_types::{ClusterSpec, SimTime};

/// Resolves a `--format json|bin` flag; `None` when absent.
fn format_flag(args: &Args, flag: &str) -> Result<Option<TraceFormat>, String> {
    match args.get(flag) {
        None => Ok(None),
        Some("json") => Ok(Some(TraceFormat::Json)),
        Some("bin") => Ok(Some(TraceFormat::Bin)),
        Some(other) => Err(format!("flag --{flag}: expected `json` or `bin`, got `{other}`")),
    }
}

/// Infers a trace format from a file extension (`.bin` means binary).
fn format_from_extension(path: &str) -> Option<TraceFormat> {
    if path.ends_with(".bin") {
        Some(TraceFormat::Bin)
    } else if path.ends_with(".json") {
        Some(TraceFormat::Json)
    } else {
        None
    }
}

/// Sniffs a trace file's on-disk format by its magic bytes.
fn sniff_format(path: &str) -> Result<TraceFormat, String> {
    use std::io::Read;
    let mut file = std::fs::File::open(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let mut magic = [0u8; 8];
    let mut filled = 0;
    while filled < magic.len() {
        match file.read(&mut magic[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) => return Err(format!("cannot read `{path}`: {e}")),
        }
    }
    Ok(if simmr_trace::is_binary_trace(&magic[..filled]) {
        TraceFormat::Bin
    } else {
        TraceFormat::Json
    })
}

/// `simmr generate`: synthetic Facebook-like trace to JSON or binary.
pub fn generate(args: &Args) -> Result<(), String> {
    let jobs: usize = args.parse_or("jobs", 100)?;
    let mean_ia: f64 = args.parse_or("mean-ia-ms", 60_000.0)?;
    let seed: u64 = args.parse_or("seed", 1)?;
    let out = args.require("out")?;
    let format = match format_flag(args, "format")? {
        Some(f) => f,
        None => format_from_extension(out).unwrap_or(TraceFormat::Json),
    };
    let variants: Option<usize> = match args.get("variants") {
        None => None,
        Some(v) => {
            let v: usize = v.parse().map_err(|_| format!("flag --variants: cannot parse `{v}`"))?;
            if v == 0 {
                return Err("--variants must be at least 1".into());
            }
            Some(v)
        }
    };
    let workload = FacebookWorkload { mean_interarrival_ms: mean_ia };

    // The pooled + binary combination streams straight to disk with
    // O(pool) memory — the million-job path.
    if let (TraceFormat::Bin, Some(v)) = (format, variants) {
        let file = std::fs::File::create(out).map_err(|e| format!("cannot write `{out}`: {e}"))?;
        let writer = workload
            .write_bin(jobs, v, seed, std::io::BufWriter::new(file))
            .map_err(|e| format!("cannot write `{out}`: {e}"))?;
        // into_inner flushes the buffered tail
        writer.into_inner().map_err(|e| format!("cannot write `{out}`: {e}"))?;
        println!("generated {jobs} pooled jobs ({v} variants/class, streamed) -> {out}");
        return Ok(());
    }

    let trace = match variants {
        Some(v) => workload.generate_pooled(jobs, v, seed),
        None => workload.generate(jobs, seed),
    };
    match format {
        TraceFormat::Json => save_trace(out, &trace)?,
        TraceFormat::Bin => {
            let bytes = encode_trace(&trace).map_err(|e| e.to_string())?;
            std::fs::write(out, bytes).map_err(|e| format!("cannot write `{out}`: {e}"))?;
        }
    }
    println!(
        "generated {} jobs ({} tasks, {:.1}h serial work) -> {out}",
        trace.len(),
        trace.total_tasks(),
        trace.total_serial_work_ms() as f64 / 3.6e6
    );
    Ok(())
}

/// `simmr testbed`: run the application suite on the testbed simulator.
pub fn testbed(args: &Args) -> Result<(), String> {
    let out = args.require("out")?;
    let seed: u64 = args.parse_or("seed", 1)?;
    let policy = match args.get("policy").unwrap_or("fifo") {
        "fifo" => ClusterPolicy::Fifo,
        "maxedf" => ClusterPolicy::MaxEdf,
        "minedf" => ClusterPolicy::MinEdf,
        other => return Err(format!("unknown testbed policy `{other}`")),
    };
    let datasets: Vec<usize> = args
        .get("datasets")
        .unwrap_or("1")
        .split(',')
        .map(|d| d.parse::<usize>().map_err(|e| format!("--datasets: {e}")))
        .collect::<Result<_, _>>()?;
    let mut sim = ClusterSim::new(ClusterConfig::paper_testbed(), policy, seed);
    let mut clock = SimTime::ZERO;
    for model in simmr_apps::standard_suite(&datasets) {
        sim.submit(model, clock, None);
        clock += 300_000;
    }
    let run = sim.run();
    std::fs::write(out, &run.history).map_err(|e| format!("cannot write `{out}`: {e}"))?;
    println!("testbed run complete: {} jobs, makespan {}", run.results.len(), run.makespan);
    for r in &run.results {
        println!("  {:<22} {:>9.1}s", r.name, r.duration_ms() as f64 / 1000.0);
    }
    println!("history log -> {out}");
    Ok(())
}

/// `simmr profile`: history log -> replayable trace.
pub fn profile(args: &Args) -> Result<(), String> {
    let log_path = args.positional(0).ok_or("usage: simmr profile HISTORY.log --out T.json")?;
    let out = args.require("out")?;
    let log =
        std::fs::read_to_string(log_path).map_err(|e| format!("cannot read `{log_path}`: {e}"))?;
    let trace = trace_from_history(&log, &format!("profiled from {log_path}"))
        .map_err(|e| e.to_string())?;
    save_trace(out, &trace)?;
    println!("profiled {} jobs ({} tasks) -> {out}", trace.len(), trace.total_tasks());
    Ok(())
}

/// Builds the [`ScenarioSpec`] the replay flags describe, with the CLI's
/// historical validation messages.
fn scenario_from_args(args: &Args, trace: TraceRef) -> Result<ScenarioSpec, String> {
    let policy: simmr_sched::PolicySpec = if let Some(pools_path) = args.get("pools") {
        match args.get("policy") {
            None | Some("hier") => {}
            Some(other) => {
                return Err(format!(
                    "--pools picks the hierarchical policy; drop --policy or set it to \
                     `hier` (got `{other}`)"
                ));
            }
        }
        let text = std::fs::read_to_string(pools_path)
            .map_err(|e| format!("cannot read `{pools_path}`: {e}"))?;
        let pools =
            simmr_sched::pools_from_json(&text).map_err(|e| format!("`{pools_path}`: {e}"))?;
        simmr_sched::PolicySpec::Hier { pools }
    } else {
        args.get("policy")
            .unwrap_or("fifo")
            .parse()
            .map_err(|e: simmr_sched::PolicyParseError| e.to_string())?
    };
    let mut spec = ScenarioSpec::new(trace, policy);
    let map_slots: usize = args.parse_or("map-slots", 64)?;
    let reduce_slots: usize = args.parse_or("reduce-slots", 64)?;
    let hosts: usize = args.parse_or("hosts", 1)?;
    spec.cluster = ClusterSpec::new(map_slots, reduce_slots).with_hosts(hosts);
    spec.seed = args.parse_or("seed", 1)?;
    spec.aggregate = args.has("aggregate");
    spec.timeline = args.has("timeline");
    spec.check_invariants = args.has("check-invariants");
    if let Some(failures) = args.get("failures") {
        let count: u32 = failures.parse().map_err(|e| format!("--failures: {e}"))?;
        if hosts < 2 {
            return Err("--failures needs --hosts of at least 2 (host 0 never fails)".into());
        }
        let mtbf_s: f64 = args.parse_or("failure-mtbf-s", 3600.0)?;
        if !(mtbf_s.is_finite() && mtbf_s > 0.0) {
            return Err("--failure-mtbf-s must be positive".into());
        }
        spec.failures = Some(count);
        spec.failure_mtbf_s = mtbf_s;
    }
    if let Some(rec_s) = args.get("failure-recovery-s") {
        if spec.failures.is_none() {
            return Err("--failure-recovery-s needs --failures".into());
        }
        let rec_s: f64 = rec_s.parse().map_err(|e| format!("--failure-recovery-s: {e}"))?;
        if !(rec_s.is_finite() && rec_s > 0.0) {
            return Err("--failure-recovery-s must be positive".into());
        }
        spec.failure_recovery_s = Some(rec_s);
    }
    if let Some(factor) = args.get("speculation") {
        spec.speculation = Some(factor.parse().map_err(|e| format!("--speculation: {e}"))?);
    }
    if let Some(sigma) = args.get("slowdown") {
        let sigma: f64 = sigma.parse().map_err(|e| format!("--slowdown: {e}"))?;
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err("--slowdown must be positive".into());
        }
        spec.slowdown_sigma = Some(sigma);
    }
    if let Some(df) = args.get("deadline-factor") {
        spec.deadline_factor = Some(df.parse().map_err(|e| format!("--deadline-factor: {e}"))?);
    }
    if let Some(at) = args.get("fork-at") {
        spec.fork_at = Some(at.parse().map_err(|e| format!("--fork-at: {e}"))?);
    }
    if let Some(policy) = args.get("fork-policy") {
        spec.divergences.push(DivergenceSpec::Policy(
            policy.parse().map_err(|e: simmr_sched::PolicyParseError| e.to_string())?,
        ));
    }
    let add_maps: usize = args.parse_or("fork-add-map-slots", 0)?;
    let add_reduces: usize = args.parse_or("fork-add-reduce-slots", 0)?;
    if add_maps > 0 || add_reduces > 0 {
        spec.divergences
            .push(DivergenceSpec::AddSlots { map_slots: add_maps, reduce_slots: add_reduces });
    }
    if let Some(fault) = args.get("fork-fault") {
        let (host, at_ms) = match fault.split_once('@') {
            Some((h, t)) => (h, t.parse().map_err(|e| format!("--fork-fault: bad instant: {e}"))?),
            None => (fault, 0),
        };
        let host: u32 = host.parse().map_err(|e| format!("--fork-fault: bad host: {e}"))?;
        spec.divergences.push(DivergenceSpec::Fault { host, at_ms });
    }
    if let Some(path) = args.get("fork-surge") {
        spec.divergences.push(DivergenceSpec::Surge(load_trace(path)?.jobs));
    }
    if !spec.divergences.is_empty() && spec.fork_at.is_none() {
        return Err("fork divergence flags need --fork-at MS (the fork instant)".into());
    }
    Ok(spec)
}

/// `simmr replay`: trace -> scenario spec -> facade -> per-job report.
///
/// JSON traces are materialized; binary traces (`--format bin`, or sniffed
/// from the file's magic bytes) stream through the engine one arrival at a
/// time.
pub fn replay(args: &Args) -> Result<(), String> {
    let path = args.positional(0).ok_or("usage: simmr replay TRACE.{json,bin} [flags]")?;
    let format = match args.get("format") {
        None | Some("auto") => sniff_format(path)?,
        _ => format_flag(args, "format")?.expect("checked above"),
    };
    if args.has("deadline-factor") && format == TraceFormat::Bin {
        return Err("--deadline-factor rewrites the trace and needs the materialized JSON form; \
             run `simmr trace convert` first"
            .into());
    }
    // an explicit --format json forces materialization even for a file
    // whose magic says binary; `auto` lets the facade stream it
    let trace_ref = match format {
        TraceFormat::Json if args.get("format").is_some_and(|f| f != "auto") => {
            TraceRef::Inline(load_trace(path)?)
        }
        _ => TraceRef::Path(path.to_owned()),
    };
    let spec = scenario_from_args(args, trace_ref)?;
    let facade = SimFacade::new();
    let start = std::time::Instant::now();
    let run = facade.run(&spec).map_err(|e| e.message().to_string())?;
    print_run_timing(&run, start.elapsed());
    let report = run.report;
    if !report.jobs.is_empty() {
        println!(
            "{:<24} {:>10} {:>10} {:>10} {:>8}",
            "job", "arrival_s", "finish_s", "dur_s", "met?"
        );
    }
    for job in &report.jobs {
        println!(
            "{:<24} {:>10.1} {:>10.1} {:>10.1} {:>8}",
            job.name,
            job.arrival.as_secs_f64(),
            job.completion.as_secs_f64(),
            job.duration() as f64 / 1000.0,
            if job.deadline.is_none() {
                "-"
            } else if job.met_deadline() {
                "yes"
            } else {
                "NO"
            }
        );
    }
    println!(
        "makespan {}  missed deadlines {}/{}  relative-deadline-exceeded {:.2}",
        report.makespan,
        report.missed_deadlines(),
        report.jobs.len(),
        report.total_relative_deadline_exceeded()
    );
    if args.has("timeline") {
        println!("timeline entries: {}", report.timeline.len());
    }
    Ok(())
}

/// `simmr checkpoint`: capture an engine checkpoint at a settled batch
/// boundary, or decode and summarize an existing checkpoint file.
///
/// The captured file feeds `simmr replay --fork-at` experiments and the
/// serve layer's warm-start cache; `--info` prints the header of a file
/// without running anything.
pub fn checkpoint(args: &Args) -> Result<(), String> {
    if let Some(path) = args.get("info") {
        let bytes = std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let ckpt = simmr_core::EngineCheckpoint::decode(&bytes).map_err(|e| e.to_string())?;
        println!(
            "checkpoint @ {} (settled boundary {}): policy {}, {} jobs admitted, \
             {} pending events, {} events processed, digest {:016x}",
            ckpt.at(),
            ckpt.boundary(),
            ckpt.policy_name(),
            ckpt.jobs_admitted(),
            ckpt.pending_events(),
            ckpt.events_processed(),
            ckpt.digest()
        );
        return Ok(());
    }
    let path = args.positional(0).ok_or(
        "usage: simmr checkpoint TRACE.{json,bin} --at MS --out C.ckpt [engine flags]\n       \
         simmr checkpoint --info C.ckpt",
    )?;
    let at: u64 = args.require("at")?.parse().map_err(|e| format!("--at: {e}"))?;
    let out = args.require("out")?;
    let spec = scenario_from_args(args, TraceRef::Inline(load_trace(path)?))?;
    if spec.fork_at.is_some() {
        return Err("`simmr checkpoint` captures the shared prefix; fork flags belong to \
             `simmr replay --fork-at`"
            .into());
    }
    let resolved = SimFacade::new().resolve(&spec).map_err(|e| e.message().to_string())?;
    let ckpt = resolved.checkpoint(SimTime::from_millis(at));
    let bytes = ckpt.encode();
    std::fs::write(out, &bytes).map_err(|e| format!("cannot write `{out}`: {e}"))?;
    println!(
        "checkpoint @ {} (settled boundary {}): {} jobs admitted, {} pending events, \
         {} bytes, digest {:016x} -> {out}",
        ckpt.at(),
        ckpt.boundary(),
        ckpt.jobs_admitted(),
        ckpt.pending_events(),
        bytes.len(),
        ckpt.digest()
    );
    Ok(())
}

/// `simmr compare`: one trace, several policies, the §V utility metric.
///
/// All policies go through the facade as one batch: the trace is loaded
/// and deadline-stamped once, and the runs fan out across cores.
pub fn compare(args: &Args) -> Result<(), String> {
    let path = args.positional(0).ok_or("usage: simmr compare TRACE.json [flags]")?;
    let map_slots: usize = args.parse_or("map-slots", 64)?;
    let reduce_slots: usize = args.parse_or("reduce-slots", 64)?;
    let df: f64 = args.parse_or("deadline-factor", 1.5)?;
    let seed: u64 = args.parse_or("seed", 1)?;
    let policies: Vec<&str> =
        args.get("policies").unwrap_or("fifo,maxedf,minedf").split(',').map(str::trim).collect();
    let specs: Vec<ScenarioSpec> = policies
        .iter()
        .map(|name| {
            let policy = name.parse().map_err(|e: simmr_sched::PolicyParseError| e.to_string())?;
            let mut spec = ScenarioSpec::new(TraceRef::Path(path.to_owned()), policy);
            spec.cluster = ClusterSpec::new(map_slots, reduce_slots);
            spec.seed = seed;
            spec.deadline_factor = Some(df);
            Ok(spec)
        })
        .collect::<Result<_, String>>()?;
    let facade = SimFacade::new();
    let start = std::time::Instant::now();
    let runs = facade.run_batch(&specs);
    eprintln!(
        "[simmr] compared {} policies in {:.3}s",
        policies.len(),
        start.elapsed().as_secs_f64()
    );
    println!(
        "{:<10} {:>12} {:>10} {:>14} {:>12}",
        "policy", "makespan_s", "missed", "rel_exceeded", "mean_dur_s"
    );
    for (policy, run) in policies.iter().zip(runs) {
        let report = run.map_err(|e| e.message().to_string())?.report;
        println!(
            "{:<10} {:>12.1} {:>7}/{:<2} {:>14.2} {:>12.1}",
            policy,
            report.makespan.as_secs_f64(),
            report.missed_deadlines(),
            report.jobs.len(),
            report.total_relative_deadline_exceeded(),
            report.mean_duration_ms() / 1000.0
        );
    }
    Ok(())
}

/// `simmr serve`: the long-running what-if HTTP service.
pub fn serve(args: &Args) -> Result<(), String> {
    let config = ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:4601").to_owned(),
        workers: args.parse_or("workers", 0)?,
        db_dir: args.get("db").map(str::to_owned),
        cache_shard_cap: args.parse_or("cache-cap", 256)?,
        ..ServeConfig::default()
    };
    let server = Server::bind(config)?;
    eprintln!(
        "[simmr serve] listening on http://{} (POST /v1/run, /v1/sweep, /v1/shutdown)",
        server.local_addr()
    );
    server.run()
}

const TRACE_USAGE: &str = "usage: simmr trace convert IN OUT [--format json|bin]
       simmr trace store NAME FILE --db DIR [--format json|bin]
       simmr trace list --db DIR
       simmr trace remove NAME --db DIR";

/// `simmr trace`: trace-database housekeeping and format conversion.
pub fn trace(args: &Args) -> Result<(), String> {
    match args.positional(0) {
        Some("convert") => trace_convert(args),
        Some("store") => trace_store(args),
        Some("list") => trace_list(args),
        Some("remove") => trace_remove(args),
        Some(other) => Err(format!("unknown trace subcommand `{other}`\n{TRACE_USAGE}")),
        None => Err(TRACE_USAGE.into()),
    }
}

/// `simmr trace convert`: JSON <-> binary. The output format comes from
/// `--format`, else the output extension, else the opposite of the input.
fn trace_convert(args: &Args) -> Result<(), String> {
    let input = args.positional(1).ok_or(TRACE_USAGE)?;
    let out = args.positional(2).ok_or(TRACE_USAGE)?;
    let input_format = sniff_format(input)?;
    let out_format = match format_flag(args, "format")? {
        Some(f) => f,
        None => format_from_extension(out).unwrap_or(match input_format {
            TraceFormat::Json => TraceFormat::Bin,
            TraceFormat::Bin => TraceFormat::Json,
        }),
    };
    let trace = load_trace(input)?;
    let bytes = match out_format {
        TraceFormat::Json => {
            let mut json = serde_json::to_string_pretty(&trace).map_err(|e| e.to_string())?;
            json.push('\n');
            json.into_bytes()
        }
        TraceFormat::Bin => encode_trace(&trace).map_err(|e| e.to_string())?,
    };
    std::fs::write(out, &bytes).map_err(|e| format!("cannot write `{out}`: {e}"))?;
    println!(
        "converted {} jobs: {input} ({input_format}) -> {out} ({out_format}, {} bytes)",
        trace.len(),
        bytes.len()
    );
    Ok(())
}

/// `simmr trace store`: file -> named entry in a trace database.
fn trace_store(args: &Args) -> Result<(), String> {
    let name = args.positional(1).ok_or(TRACE_USAGE)?;
    let file = args.positional(2).ok_or(TRACE_USAGE)?;
    let db = TraceDatabase::open(args.require("db")?).map_err(|e| e.to_string())?;
    let trace = load_trace(file)?;
    let format = format_flag(args, "format")?.unwrap_or(TraceFormat::Json);
    match format {
        TraceFormat::Json => db.store(name, &trace).map_err(|e| e.to_string())?,
        TraceFormat::Bin => db.store_bin(name, &trace).map_err(|e| e.to_string())?,
    }
    println!("stored `{name}` ({format}, {} jobs)", trace.len());
    Ok(())
}

/// `simmr trace list`: one row per stored trace, corruption surfaced.
fn trace_list(args: &Args) -> Result<(), String> {
    let db = TraceDatabase::open(args.require("db")?).map_err(|e| e.to_string())?;
    let listing = db.list().map_err(|e| e.to_string())?;
    if listing.is_empty() {
        println!("(empty database)");
        return Ok(());
    }
    println!("{:<24} {:<6} {:>8}  {:<19} {:<16}", "name", "format", "jobs", "arrivals", "digest");
    for (name, status) in &listing {
        match status {
            TraceStatus::Ok { format, jobs, span, digest } => {
                let arrivals = match span {
                    Some((first, last)) => {
                        format!("{:.1}s..{:.1}s", first.as_secs_f64(), last.as_secs_f64())
                    }
                    None => "-".to_owned(),
                };
                println!("{name:<24} {format:<6} {jobs:>8}  {arrivals:<19} {digest}");
            }
            TraceStatus::Corrupt { format, error } => {
                println!("{name:<24} {format:<6}  CORRUPT: {error}");
            }
        }
    }
    Ok(())
}

/// `simmr trace remove`: drop a stored trace (all formats).
fn trace_remove(args: &Args) -> Result<(), String> {
    let name = args.positional(1).ok_or(TRACE_USAGE)?;
    let db = TraceDatabase::open(args.require("db")?).map_err(|e| e.to_string())?;
    db.remove(name).map_err(|e| e.to_string())?;
    println!("removed `{name}`");
    Ok(())
}

/// `simmr scale`: trace scaling (§VII).
pub fn scale(args: &Args) -> Result<(), String> {
    let path = args.positional(0).ok_or("usage: simmr scale TRACE.json --factor F --out O")?;
    let factor: f64 = args.require("factor")?.parse().map_err(|e| format!("--factor: {e}"))?;
    if !(factor.is_finite() && factor > 0.0) {
        return Err("--factor must be positive".into());
    }
    let out = args.require("out")?;
    let mut trace = load_trace(path)?;
    for job in trace.jobs.iter_mut() {
        job.template = simmr_trace::scale_template(&job.template, factor);
    }
    trace.meta.description = format!("{} (scaled x{factor})", trace.meta.description);
    save_trace(out, &trace)?;
    println!("scaled {} jobs by {factor} -> {out} ({} tasks)", trace.len(), trace.total_tasks());
    Ok(())
}

/// `simmr stats`: characterize a workload trace (§V-C methodology).
pub fn stats(args: &Args) -> Result<(), String> {
    let path = args.positional(0).ok_or("usage: simmr stats TRACE.json")?;
    let trace = crate::load_trace(path)?;
    print!("{}", simmr_trace::characterize(&trace).render());
    Ok(())
}

/// `simmr fit`: §V-C distribution-fitting methodology on a sample file.
pub fn fit(args: &Args) -> Result<(), String> {
    let path = args.positional(0).ok_or("usage: simmr fit SAMPLES.txt")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let samples: Vec<f64> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.parse::<f64>().map_err(|e| format!("bad sample `{l}`: {e}")))
        .collect::<Result<_, _>>()?;
    if samples.len() < 2 {
        return Err("need at least 2 samples".into());
    }
    let reports = fit_best(&samples);
    if reports.is_empty() {
        return Err("no candidate distribution could be fitted".into());
    }
    println!("{:>10}  distribution", "K-S");
    for r in &reports {
        println!("{:>10.4}  {:?}", r.ks, r.dist);
    }
    println!("\nbest fit: {:?} (K-S = {:.4})", reports[0].dist, reports[0].ks);
    Ok(())
}
