//! The `simmr serve` HTTP server: what-if queries over a worker pool.
//!
//! Protocol (JSON bodies, one request per connection):
//!
//! * `GET /healthz` — liveness plus cache counters.
//! * `GET /v1/traces` — the trace database listing with content digests.
//! * `POST /v1/run` — one [`ScenarioSpec`]; the response body is the
//!   serialized report and the `x-simmr-cache` header says `hit` or
//!   `miss`. The body is byte-identical either way — cache status never
//!   leaks into it.
//! * `POST /v1/sweep` — a base scenario crossed with `policies` ×
//!   `seeds` (or an explicit `scenarios` list). Uncached scenarios are
//!   batched into one [`simmr_stats::parallel_sweep`] fan-out; with
//!   `?stream=1` each result is flushed as an NDJSON chunk the moment
//!   it completes.
//! * `POST /v1/shutdown` — responds, then stops the accept loop and
//!   drains the workers.
//!
//! Every piece of state lives in one [`ServerState`] value shared by
//! `Arc` — no globals, so tests run servers side by side in one process.

use crate::cache::{CkptCache, ReportCache};
use crate::facade::{FacadeError, ResolvedScenario, ScenarioSpec, SimFacade};
use crate::http::{ChunkedWriter, HttpError, Request, Response};
use simmr_sched::PolicySpec;
use simmr_stats::parallel_sweep;
use simmr_trace::{TraceDigest, TraceStatus};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Most scenarios one sweep request may expand to.
const MAX_SWEEP: usize = 1024;

/// How `simmr serve` is wired up.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:4601` (port 0 picks one).
    pub addr: String,
    /// Connection worker threads; 0 means one per core (capped at 8).
    pub workers: usize,
    /// Trace database directory; named/digest trace refs need it.
    pub db_dir: Option<String>,
    /// Cache shard count.
    pub cache_shards: usize,
    /// Max cached reports per shard.
    pub cache_shard_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:4601".into(),
            workers: 0,
            db_dir: None,
            cache_shards: 16,
            cache_shard_cap: 256,
        }
    }
}

/// Everything a request handler can touch, shared across workers.
struct ServerState {
    facade: SimFacade,
    cache: ReportCache,
    ckpts: CkptCache,
    stop: AtomicBool,
    addr: SocketAddr,
}

impl ServerState {
    /// Flags the accept loop down and wakes it with a throwaway
    /// connection (accept() has no timeout; the nudge is the wake-up).
    fn begin_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// A bound, not-yet-running `simmr serve` instance.
pub struct Server {
    listener: TcpListener,
    workers: usize,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listen socket and opens the trace database.
    pub fn bind(config: ServeConfig) -> Result<Server, String> {
        let facade = match &config.db_dir {
            Some(dir) => SimFacade::with_db(dir).map_err(|e| e.to_string())?,
            None => SimFacade::new(),
        };
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot listen on `{}`: {e}", config.addr))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let workers = match config.workers {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).clamp(2, 8),
            n => n,
        };
        Ok(Server {
            listener,
            workers,
            state: Arc::new(ServerState {
                facade,
                cache: ReportCache::new(config.cache_shards, config.cache_shard_cap),
                ckpts: CkptCache::new(config.cache_shards, config.cache_shard_cap),
                stop: AtomicBool::new(false),
                addr,
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serves until `POST /v1/shutdown`: accepts connections on this
    /// thread and hands them to the worker pool.
    pub fn run(self) -> Result<(), String> {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&self.state);
                scope.spawn(move || loop {
                    let next = rx.lock().expect("worker queue poisoned").recv();
                    match next {
                        Ok(stream) => {
                            // a panicking handler (e.g. the invariant
                            // checker firing) must not take the pool down
                            let caught =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    handle(&state, stream)
                                }));
                            if caught.is_err() {
                                eprintln!("[simmr serve] request handler panicked");
                            }
                        }
                        Err(_) => break,
                    }
                });
            }
            for stream in self.listener.incoming() {
                if self.state.stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
                    let _ = tx.send(stream);
                }
            }
            drop(tx);
        });
        Ok(())
    }
}

/// Serves one connection: read a request, route it, write the response.
fn handle(state: &ServerState, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let request = match Request::read_from(&mut reader) {
        Ok(Some(r)) => r,
        // clean EOF: e.g. the shutdown wake-up connection
        Ok(None) | Err(HttpError::Io(_)) => return,
        Err(e) => {
            let _ = error_response(400, &e.to_string()).write_to(&mut writer);
            return;
        }
    };
    let is_shutdown = request.method == "POST" && request.path == "/v1/shutdown";
    let response = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => healthz(state),
        ("GET", "/v1/traces") => traces(state),
        ("POST", "/v1/run") => run_one(state, &request),
        ("POST", "/v1/sweep") if request.query("stream") == Some("1") => {
            match sweep_streamed(state, &request, &mut writer) {
                Ok(()) => return,
                Err(resp) => resp,
            }
        }
        ("POST", "/v1/sweep") => sweep(state, &request),
        ("POST", "/v1/shutdown") => Response::json(200, r#"{"status":"shutting down"}"#),
        (_, "/healthz" | "/v1/traces" | "/v1/run" | "/v1/sweep" | "/v1/shutdown") => {
            error_response(405, "method not allowed")
        }
        _ => error_response(404, "no such endpoint"),
    };
    let _ = response.write_to(&mut writer);
    if is_shutdown {
        state.begin_shutdown();
    }
}

/// `{"error": MSG}` with proper JSON escaping.
fn error_response(status: u16, msg: &str) -> Response {
    let quoted = serde_json::to_string(msg).unwrap_or_else(|_| "\"error\"".into());
    Response::json(status, format!("{{\"error\":{quoted}}}"))
}

/// HTTP status for a facade failure: bad specs are the client's fault,
/// unresolvable traces are "not found".
fn facade_error_response(e: &FacadeError) -> Response {
    let status = match e {
        FacadeError::BadSpec(_) => 400,
        FacadeError::Trace(_) => 404,
    };
    error_response(status, &e.to_string())
}

/// `GET /healthz`.
fn healthz(state: &ServerState) -> Response {
    let v = serde::Value::Object(vec![
        ("status".to_owned(), serde::Value::Str("ok".to_owned())),
        ("cache".to_owned(), serde::Serialize::to_value(&state.cache.stats())),
        ("checkpoints".to_owned(), serde::Serialize::to_value(&state.ckpts.stats())),
    ]);
    Response::json(200, serde_json::to_string(&v).expect("value serializes"))
}

/// `GET /v1/traces`.
fn traces(state: &ServerState) -> Response {
    let Some(db) = state.facade.db() else {
        return error_response(404, "no trace database configured (serve --db DIR)");
    };
    let listing = match db.list() {
        Ok(l) => l,
        Err(e) => return error_response(500, &e.to_string()),
    };
    let entries: Vec<serde::Value> = listing
        .iter()
        .map(|(name, status)| {
            let mut pairs = vec![("name".to_owned(), serde::Value::Str(name.clone()))];
            match status {
                TraceStatus::Ok { format, jobs, span, digest } => {
                    pairs.push(("format".to_owned(), serde::Value::Str(format.to_string())));
                    pairs.push(("jobs".to_owned(), serde::Value::U64(*jobs as u64)));
                    if let Some((first, last)) = span {
                        pairs.push((
                            "first_arrival_ms".to_owned(),
                            serde::Value::U64(first.as_millis()),
                        ));
                        pairs.push((
                            "last_arrival_ms".to_owned(),
                            serde::Value::U64(last.as_millis()),
                        ));
                    }
                    pairs.push(("digest".to_owned(), serde::Value::Str(digest.to_string())));
                }
                TraceStatus::Corrupt { format, error } => {
                    pairs.push(("format".to_owned(), serde::Value::Str(format.to_string())));
                    pairs.push(("error".to_owned(), serde::Value::Str(error.clone())));
                }
            }
            serde::Value::Object(pairs)
        })
        .collect();
    let v = serde::Value::Object(vec![("traces".to_owned(), serde::Value::Array(entries))]);
    Response::json(200, serde_json::to_string(&v).expect("value serializes"))
}

/// `POST /v1/run`.
fn run_one(state: &ServerState, request: &Request) -> Response {
    let spec: ScenarioSpec = match request.body_str().map(serde_json::from_str) {
        Ok(Ok(spec)) => spec,
        Ok(Err(e)) => return error_response(400, &e.to_string()),
        Err(e) => return error_response(400, &e.to_string()),
    };
    let resolved = match state.facade.resolve(&spec) {
        Ok(r) => r,
        Err(e) => return facade_error_response(&e),
    };
    let (cached, ckpt, body) = report_for(state, &resolved);
    let mut response = Response::json(200, body.as_bytes().to_vec())
        .with_header("x-simmr-cache", if cached { "hit" } else { "miss" })
        .with_header("x-simmr-digest", &resolved.digest.to_string());
    if let Some(hit) = ckpt {
        response = response.with_header("x-simmr-ckpt", if hit { "hit" } else { "miss" });
    }
    response
}

/// The serialized report for a resolved scenario: from the cache when
/// present, computed (and cached) otherwise. The returned bytes are
/// identical either way. The middle element is the fork scenario's
/// checkpoint-memo outcome (`None` for non-forks and report-cache hits).
fn report_for(state: &ServerState, resolved: &ResolvedScenario) -> (bool, Option<bool>, Arc<str>) {
    if let Some(body) = state.cache.get(&resolved.key) {
        return (true, None, body);
    }
    let run = resolved.run_warm(&state.ckpts);
    let body: Arc<str> =
        Arc::from(serde_json::to_string(&run.report).expect("report serializes").as_str());
    state.cache.insert(resolved.key.clone(), Arc::clone(&body));
    (false, run.ckpt, body)
}

/// A sweep request: a base scenario crossed with policy and seed lists,
/// or an explicit scenario list.
struct SweepRequest {
    base: Option<ScenarioSpec>,
    policies: Vec<PolicySpec>,
    seeds: Vec<u64>,
    scenarios: Vec<ScenarioSpec>,
}

impl serde::Deserialize for SweepRequest {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        if !matches!(v, serde::Value::Object(_)) {
            return Err(serde::DeError::new("expected object for sweep request"));
        }
        fn list<T: serde::Deserialize>(
            v: &serde::Value,
            name: &str,
        ) -> Result<Vec<T>, serde::DeError> {
            match v.get(name) {
                None | Some(serde::Value::Null) => Ok(Vec::new()),
                Some(fv) => Vec::<T>::from_value(fv)
                    .map_err(|e| serde::DeError::new(format!("sweep.{name}: {e}"))),
            }
        }
        let base = match v.get("base") {
            None | Some(serde::Value::Null) => None,
            Some(fv) => Some(
                ScenarioSpec::from_value(fv)
                    .map_err(|e| serde::DeError::new(format!("sweep.base: {e}")))?,
            ),
        };
        Ok(SweepRequest {
            base,
            policies: list(v, "policies")?,
            seeds: list(v, "seeds")?,
            scenarios: list(v, "scenarios")?,
        })
    }
}

impl SweepRequest {
    /// The concrete scenario list this request describes.
    fn expand(self) -> Result<Vec<ScenarioSpec>, String> {
        if !self.scenarios.is_empty() {
            if self.base.is_some() || !self.policies.is_empty() || !self.seeds.is_empty() {
                return Err("give either `scenarios` or `base` (+ policies/seeds), not both".into());
            }
            return Ok(self.scenarios);
        }
        let Some(base) = self.base else {
            return Err("sweep needs `base` or `scenarios`".into());
        };
        let policies =
            if self.policies.is_empty() { vec![base.policy.clone()] } else { self.policies };
        let seeds = if self.seeds.is_empty() { vec![base.seed] } else { self.seeds };
        let mut specs = Vec::with_capacity(policies.len() * seeds.len());
        for policy in &policies {
            for &seed in &seeds {
                let mut spec = base.clone();
                spec.policy = policy.clone();
                spec.seed = seed;
                specs.push(spec);
            }
        }
        Ok(specs)
    }
}

/// One sweep entry's outcome, ready to serialize.
enum SweepEntry {
    Failed(FacadeError),
    Report { cached: bool, key: String, digest: TraceDigest, body: Arc<str> },
}

/// Renders one NDJSON/array entry. `body` is already-serialized report
/// JSON and is embedded verbatim, so cached and computed entries with
/// the same key carry byte-identical reports.
fn entry_json(index: usize, entry: &SweepEntry) -> String {
    match entry {
        SweepEntry::Failed(e) => {
            let quoted = serde_json::to_string(&e.to_string()).unwrap_or_else(|_| "\"\"".into());
            format!("{{\"index\":{index},\"error\":{quoted}}}")
        }
        SweepEntry::Report { cached, key, digest, body } => {
            let key = serde_json::to_string(key).expect("string serializes");
            format!(
                "{{\"index\":{index},\"cached\":{cached},\"digest\":\"{digest}\",\"key\":{key},\
                 \"report\":{body}}}"
            )
        }
    }
}

/// Parses and resolves a sweep request body into per-index outcomes:
/// already-failed entries, cache hits, and the resolved misses still to
/// run.
#[allow(clippy::type_complexity)]
fn prepare_sweep(
    state: &ServerState,
    request: &Request,
) -> Result<(Vec<Option<SweepEntry>>, Vec<(usize, ResolvedScenario)>), Response> {
    let parsed: SweepRequest = match request.body_str().map(serde_json::from_str) {
        Ok(Ok(p)) => p,
        Ok(Err(e)) => return Err(error_response(400, &e.to_string())),
        Err(e) => return Err(error_response(400, &e.to_string())),
    };
    let specs = parsed.expand().map_err(|e| error_response(400, &e))?;
    if specs.is_empty() {
        return Err(error_response(400, "sweep expands to zero scenarios"));
    }
    if specs.len() > MAX_SWEEP {
        return Err(error_response(
            400,
            &format!("sweep expands to {} scenarios (limit {MAX_SWEEP})", specs.len()),
        ));
    }
    let mut entries: Vec<Option<SweepEntry>> = Vec::with_capacity(specs.len());
    let mut misses: Vec<(usize, ResolvedScenario)> = Vec::new();
    for (index, resolved) in state.facade.resolve_many(&specs).into_iter().enumerate() {
        match resolved {
            Err(e) => entries.push(Some(SweepEntry::Failed(e))),
            Ok(resolved) => match state.cache.get(&resolved.key) {
                Some(body) => entries.push(Some(SweepEntry::Report {
                    cached: true,
                    key: resolved.key,
                    digest: resolved.digest,
                    body,
                })),
                None => {
                    entries.push(None);
                    misses.push((index, resolved));
                }
            },
        }
    }
    warm_checkpoints(state, &misses);
    Ok((entries, misses))
}

/// Materializes each *distinct* prefix checkpoint the fork scenarios
/// among `misses` share, fanning the prefix runs out over all cores —
/// so a sweep of N divergent suffixes over one prefix runs that prefix
/// exactly once, and every subsequent [`ResolvedScenario::run_warm`]
/// warm-starts from the memo.
fn warm_checkpoints(state: &ServerState, misses: &[(usize, ResolvedScenario)]) {
    let mut seen = std::collections::HashSet::new();
    let distinct: Vec<&ResolvedScenario> = misses
        .iter()
        .filter_map(|(_, r)| r.ckpt_key().filter(|k| seen.insert(k.clone())).map(|_| r))
        .collect();
    if !distinct.is_empty() {
        parallel_sweep(distinct.len(), |i| distinct[i].ensure_ckpt(&state.ckpts));
    }
}

/// Runs one resolved miss (warm-starting forks from the checkpoint
/// memo), caches its report, returns its entry.
fn run_miss(state: &ServerState, resolved: &ResolvedScenario) -> SweepEntry {
    let run = resolved.run_warm(&state.ckpts);
    let body: Arc<str> =
        Arc::from(serde_json::to_string(&run.report).expect("report serializes").as_str());
    state.cache.insert(resolved.key.clone(), Arc::clone(&body));
    SweepEntry::Report { cached: false, key: resolved.key.clone(), digest: resolved.digest, body }
}

/// `POST /v1/sweep` (buffered): one JSON array, entries in request
/// order, uncached scenarios fanned out in one [`parallel_sweep`].
fn sweep(state: &ServerState, request: &Request) -> Response {
    let (mut entries, misses) = match prepare_sweep(state, request) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let computed = parallel_sweep(misses.len(), |i| run_miss(state, &misses[i].1));
    for ((index, _), entry) in misses.iter().zip(computed) {
        entries[*index] = Some(entry);
    }
    let rendered: Vec<String> = entries
        .iter()
        .enumerate()
        .map(|(i, e)| entry_json(i, e.as_ref().expect("every entry filled")))
        .collect();
    Response::json(200, format!("[{}]", rendered.join(",")))
        .with_header("x-simmr-sweep-count", &rendered.len().to_string())
}

/// `POST /v1/sweep?stream=1`: NDJSON chunks. Failures and cache hits
/// flush immediately; each computed scenario flushes the moment its
/// engine run completes (completion order, tagged with `index`).
fn sweep_streamed<W: Write>(
    state: &ServerState,
    request: &Request,
    writer: &mut W,
) -> Result<(), Response> {
    let (entries, misses) = prepare_sweep(state, request)?;
    let total = entries.len();
    let headers = vec![("x-simmr-sweep-count".to_owned(), total.to_string())];
    let Ok(mut chunks) = ChunkedWriter::start(writer, 200, &headers) else { return Ok(()) };
    for (index, entry) in entries.iter().enumerate() {
        if let Some(entry) = entry {
            let _ = chunks.line(&entry_json(index, entry));
        }
    }
    let (tx, rx) = mpsc::channel::<(usize, SweepEntry)>();
    std::thread::scope(|scope| {
        let state = &*state;
        let misses = &misses;
        scope.spawn(move || {
            let _ = parallel_sweep(misses.len(), |i| {
                let (index, resolved) = &misses[i];
                let _ = tx.send((*index, run_miss(state, resolved)));
            });
            // tx drops here; the drain loop below sees the channel close
        });
        for (index, entry) in rx.iter() {
            let _ = chunks.line(&entry_json(index, &entry));
        }
    });
    let _ = chunks.finish();
    Ok(())
}
