//! A deliberately small HTTP/1.1 layer for `simmr serve`.
//!
//! The build environment vendors every dependency, so rather than gate
//! the server behind a missing hyper/axum stack this module implements
//! the sliver of HTTP the service needs: parse one request (line +
//! headers + `Content-Length` body), write one response, optionally as
//! a chunked transfer for streaming sweep results. Connections are
//! `Connection: close` — one request each — which keeps the server loop
//! trivial and is plenty for a what-if query service.
//!
//! Out of scope on purpose: percent-decoding (paths and query values are
//! matched literally), request pipelining, chunked *request* bodies,
//! TLS.

use std::fmt;
use std::io::{BufRead, Write};

/// Largest accepted request body (inline traces can be sizeable).
pub const MAX_BODY: usize = 64 << 20;
/// Largest accepted request/header line.
const MAX_LINE: usize = 16 << 10;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 100;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The socket failed.
    Io(std::io::Error),
    /// The bytes were not the HTTP this module speaks.
    Malformed(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o: {e}"),
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> HttpError {
    HttpError::Malformed(msg.into())
}

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// The path, query string stripped.
    pub path: String,
    /// Query parameters in order; flags without `=` get an empty value.
    pub query: Vec<(String, String)>,
    /// Headers in order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Reads one request. `Ok(None)` means the peer closed the
    /// connection before sending a request line (a clean no-op, e.g.
    /// the server's own shutdown wake-up connection).
    pub fn read_from<R: BufRead>(reader: &mut R) -> Result<Option<Request>, HttpError> {
        let Some(line) = read_line(reader)? else { return Ok(None) };
        let mut parts = line.split_whitespace();
        let (method, target, version) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(m), Some(t), Some(v), None) => (m, t, v),
                _ => return Err(malformed(format!("bad request line {line:?}"))),
            };
        if !version.starts_with("HTTP/1.") {
            return Err(malformed(format!("unsupported version {version:?}")));
        }
        let (path, query) = parse_target(target);

        let mut headers = Vec::new();
        loop {
            let line =
                read_line(reader)?.ok_or_else(|| malformed("connection closed inside headers"))?;
            if line.is_empty() {
                break;
            }
            if headers.len() >= MAX_HEADERS {
                return Err(malformed("too many headers"));
            }
            let (name, value) =
                line.split_once(':').ok_or_else(|| malformed(format!("bad header {line:?}")))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }

        let mut request =
            Request { method: method.to_ascii_uppercase(), path, query, headers, body: Vec::new() };
        if request.header("transfer-encoding").is_some() {
            return Err(malformed("chunked request bodies are not supported"));
        }
        if let Some(len) = request.header("content-length") {
            let len: usize =
                len.parse().map_err(|_| malformed(format!("bad content-length {len:?}")))?;
            if len > MAX_BODY {
                return Err(malformed(format!("body of {len} bytes exceeds {MAX_BODY}")));
            }
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            request.body = body;
        }
        Ok(Some(request))
    }

    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// First query parameter with this name.
    pub fn query(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| malformed("body is not UTF-8"))
    }
}

/// Splits a request target into path and parsed query pairs.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_owned(), v.to_owned()),
            None => (pair.to_owned(), String::new()),
        })
        .collect();
    (path.to_owned(), query)
}

/// Reads one CRLF- (or LF-) terminated line; `None` on immediate EOF.
fn read_line<R: BufRead>(reader: &mut R) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = match reader.read(&mut byte) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        };
        if n == 0 {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(malformed("connection closed mid-line"))
            };
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            let text =
                String::from_utf8(line).map_err(|_| malformed("request line is not UTF-8"))?;
            return Ok(Some(text));
        }
        if line.len() >= MAX_LINE {
            return Err(malformed("request line too long"));
        }
        line.push(byte[0]);
    }
}

/// One HTTP response, written in full.
#[derive(Debug)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// Extra headers (content type, length and connection are added on
    /// write).
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response { status, headers: Vec::new(), body: body.into() }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Writes status line, headers and body.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, reason(self.status))?;
        write!(w, "content-type: application/json\r\n")?;
        write!(w, "content-length: {}\r\n", self.body.len())?;
        write!(w, "connection: close\r\n")?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// A chunked `application/x-ndjson` response: the head goes out
/// immediately, then one chunk per [`ChunkedWriter::line`], so sweep
/// clients see each scenario's report the moment it completes.
pub struct ChunkedWriter<'w, W: Write> {
    w: &'w mut W,
}

impl<'w, W: Write> ChunkedWriter<'w, W> {
    /// Writes the response head and returns the chunk writer.
    pub fn start(w: &'w mut W, status: u16, headers: &[(String, String)]) -> std::io::Result<Self> {
        write!(w, "HTTP/1.1 {} {}\r\n", status, reason(status))?;
        write!(w, "content-type: application/x-ndjson\r\n")?;
        write!(w, "transfer-encoding: chunked\r\n")?;
        write!(w, "connection: close\r\n")?;
        for (name, value) in headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.flush()?;
        Ok(ChunkedWriter { w })
    }

    /// Sends one NDJSON line as its own flushed chunk.
    pub fn line(&mut self, json: &str) -> std::io::Result<()> {
        write!(self.w, "{:x}\r\n", json.len() + 1)?;
        self.w.write_all(json.as_bytes())?;
        self.w.write_all(b"\n\r\n")?;
        self.w.flush()
    }

    /// Sends the terminating zero-length chunk.
    pub fn finish(self) -> std::io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

/// The reason phrases the server actually emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        _ => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        Request::read_from(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /v1/run?stream=1&x=2 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody";
        let r = parse(raw).unwrap().unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/v1/run");
        assert_eq!(r.query("stream"), Some("1"));
        assert_eq!(r.query("x"), Some("2"));
        assert_eq!(r.header("host"), Some("h"));
        assert_eq!(r.body_str().unwrap(), "body");
    }

    #[test]
    fn eof_before_request_is_a_clean_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn rejects_garbage_and_oversized_bodies() {
        assert!(parse(b"nonsense\r\n\r\n").is_err());
        assert!(parse(b"GET / SPDY/9\r\n\r\n").is_err());
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(parse(huge.as_bytes()).is_err());
        assert!(parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").is_err());
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json(200, "{}").with_header("x-simmr-cache", "hit").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("x-simmr-cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn chunked_wire_format() {
        let mut out = Vec::new();
        let mut w = ChunkedWriter::start(&mut out, 200, &[]).unwrap();
        w.line("{\"a\":1}").unwrap();
        w.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("transfer-encoding: chunked\r\n"));
        assert!(text.contains("8\r\n{\"a\":1}\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }
}
