//! # simmr-serve
//!
//! The what-if **simulation service** layer: a request-scoped facade over
//! the SimMR engine plus the long-running `simmr serve` HTTP server built
//! on top of it (see `DESIGN.md` §2.8).
//!
//! The paper's workflow is interactive capacity planning: an operator
//! holds a profiled trace and asks *"what if I ran it under maxedf with
//! 32 slots and two host failures?"* over and over. Before this crate
//! every such question re-threaded a dozen `EngineConfig` builder calls
//! through the CLI; now a question is one serializable value:
//!
//! * [`ScenarioSpec`] — the complete description of one simulation run:
//!   a [`TraceRef`] (database name, content digest, file path or inline
//!   trace), a [`simmr_sched::PolicySpec`], the cluster shape and the
//!   failure/recovery/speculation/slowdown knobs, all serde round-trip.
//! * [`SimFacade`] — resolves specs against a trace database and runs
//!   them: [`SimFacade::run`] for one scenario (binary trace files still
//!   stream through the engine), [`SimFacade::run_batch`] to fan a batch
//!   of scenarios out over all cores with one [`simmr_stats::parallel_sweep`],
//!   loading and deadline-stamping every distinct trace exactly once.
//! * [`ScenarioSpec::canonical_key`] — the normalized cache identity of
//!   a scenario: equivalent specs (reordered capacity queues, clamped
//!   knobs, any [`TraceRef`] spelling of the same content) map to the
//!   same key, and the engine's determinism makes the key sound: same
//!   key ⇒ byte-identical report.
//! * [`ReportCache`] — a sharded memo cache from canonical key to the
//!   serialized report, so repeated what-if queries are O(1).
//! * [`Server`] — the `simmr serve` HTTP/JSON endpoint: `POST /v1/run`,
//!   `POST /v1/sweep` (optionally streaming partial results as NDJSON
//!   chunks), `GET /v1/traces`, `GET /healthz`, `POST /v1/shutdown`.
//!   Plain `TcpListener` + worker threads; no global state, no runtime
//!   dependencies.

pub mod cache;
pub mod facade;
pub mod http;
pub mod server;

pub use cache::{CacheStats, CkptCache, MemoCache, ReportCache};
pub use facade::{
    attach_deadlines, load_trace_file, DivergenceSpec, FacadeError, FacadeRun, ResolvedScenario,
    ScenarioSpec, SimFacade, TraceRef,
};
pub use server::{ServeConfig, Server};
