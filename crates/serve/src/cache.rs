//! The serve layer's memo caches: canonical scenario key → serialized
//! report, and prefix key → serialized engine checkpoint.
//!
//! The engine is deterministic, and [`crate::ScenarioSpec::canonical_key`]
//! pins everything a run depends on, so caching the *serialized* report
//! body is sound: a hit returns the exact bytes the first computation
//! produced, which is the property the serve protocol promises (cache
//! status travels in a response header, never in the body). The same
//! argument covers checkpoints ([`CkptCache`]): a prefix key plus the
//! checkpoint instant pins the encoded [`simmr_core::EngineCheckpoint`]
//! byte for byte, so fork scenarios sharing a prefix warm-start from one
//! memoized prefix run. Keys hash to one of a fixed set of shards, each
//! its own mutex, so concurrent requests rarely contend.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Cached reports currently resident.
    pub entries: usize,
    /// Lifetime lookup hits.
    pub hits: u64,
    /// Lifetime lookup misses.
    pub misses: u64,
}

serde::impl_serde_struct!(CacheStats { entries, hits, misses });

/// A sharded map from canonical key to an immutable memoized value.
///
/// Values are `Arc`s so a hit is a pointer clone, not a body copy.
/// Each shard is capped; a shard that fills up is wholesale cleared (the
/// cache is a pure memo — dropping entries only costs recomputation).
pub struct MemoCache<V: Clone> {
    shards: Vec<Mutex<HashMap<String, V>>>,
    shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Canonical scenario key → serialized report body.
pub type ReportCache = MemoCache<Arc<str>>;

/// Prefix scenario key + checkpoint instant → encoded
/// [`simmr_core::EngineCheckpoint`] bytes.
pub type CkptCache = MemoCache<Arc<[u8]>>;

impl<V: Clone> MemoCache<V> {
    /// A cache with `shards` independent shards of at most `shard_cap`
    /// entries each (both clamped to ≥ 1).
    pub fn new(shards: usize, shard_cap: usize) -> Self {
        MemoCache {
            shards: (0..shards.max(1)).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_cap: shard_cap.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks a key up, counting the hit or miss.
    pub fn get(&self, key: &str) -> Option<V> {
        let found = self.shard(key).lock().expect("cache shard poisoned").get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a computed value under its key.
    pub fn insert(&self, key: String, body: V) {
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        if shard.len() >= self.shard_cap && !shard.contains_key(&key) {
            shard.clear();
        }
        shard.insert(key, body);
    }

    /// Total resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").len()).sum()
    }

    /// True when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, V>> {
        // FNV-1a: cheap, stable, good enough to spread canonical keys
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_the_same_bytes() {
        let cache = ReportCache::new(4, 16);
        assert!(cache.get("k").is_none());
        cache.insert("k".into(), Arc::from("{\"report\":1}"));
        let a = cache.get("k").unwrap();
        let b = cache.get("k").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hits share the stored allocation");
        assert_eq!(cache.stats(), CacheStats { entries: 1, hits: 2, misses: 1 });
    }

    #[test]
    fn full_shard_resets_instead_of_growing() {
        let cache = ReportCache::new(1, 2);
        cache.insert("a".into(), Arc::from("1"));
        cache.insert("b".into(), Arc::from("2"));
        // re-inserting a resident key never triggers the reset
        cache.insert("a".into(), Arc::from("1'"));
        assert_eq!(cache.len(), 2);
        cache.insert("c".into(), Arc::from("3"));
        assert_eq!(cache.len(), 1, "overflowing shard was cleared first");
        assert_eq!(cache.get("c").as_deref(), Some("3"));
    }

    #[test]
    fn degenerate_sizes_are_clamped() {
        let cache = ReportCache::new(0, 0);
        cache.insert("a".into(), Arc::from("1"));
        assert_eq!(cache.get("a").as_deref(), Some("1"));
        assert!(!cache.is_empty());
    }
}
