//! The request-scoped engine facade: [`ScenarioSpec`] in,
//! [`simmr_types::SimulationReport`] out.
//!
//! A scenario is *everything* a simulation run depends on, as one plain
//! serializable value — where the CLI used to thread a dozen
//! `EngineConfig` builder calls per call site. The facade resolves the
//! scenario's [`TraceRef`] (against a [`TraceDatabase`] when one is
//! configured), stamps deadlines when asked, builds the policy and the
//! engine config, and runs. Because the engine is deterministic, the
//! normalized spec plus the trace's content digest — the
//! [`ScenarioSpec::canonical_key`] — fully determines the report byte
//! for byte, which is what makes the serve layer's memo cache sound.

use crate::cache::CkptCache;
use simmr_core::{
    Divergence, EngineCheckpoint, EngineConfig, FaultSpec, ForkSpec, JobSource, RecoverySpec,
    SimulatorEngine,
};
use simmr_sched::PolicySpec;
use simmr_stats::parallel_sweep;
use simmr_stats::{Dist, SeededRng};
use simmr_trace::{digest_trace, BinTraceSource, TraceDatabase, TraceDigest};
use simmr_types::{ClusterSpec, HostId, JobSpec, SimTime, SimulationReport, WorkloadTrace};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Which trace a scenario runs: a reference the facade resolves.
///
/// Serialized as an object with exactly one key — `{"name": N}`,
/// `{"digest": D}`, `{"path": P}` or `{"inline": TRACE}` — or, as a
/// shorthand, a bare string meaning a database name.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRef {
    /// A named entry in the configured trace database.
    Name(String),
    /// Whatever database entry has this content digest.
    Digest(TraceDigest),
    /// A trace file on the server's filesystem (JSON or SIMMRBIN).
    Path(String),
    /// The trace itself, shipped in the request.
    Inline(WorkloadTrace),
}

impl serde::Serialize for TraceRef {
    fn to_value(&self) -> serde::Value {
        let (key, v) = match self {
            TraceRef::Name(n) => ("name", serde::Value::Str(n.clone())),
            TraceRef::Digest(d) => ("digest", serde::Value::Str(d.to_string())),
            TraceRef::Path(p) => ("path", serde::Value::Str(p.clone())),
            TraceRef::Inline(t) => ("inline", t.to_value()),
        };
        serde::Value::Object(vec![(key.to_owned(), v)])
    }
}

impl serde::Deserialize for TraceRef {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Str(name) => Ok(TraceRef::Name(name.clone())),
            serde::Value::Object(pairs) => {
                if pairs.len() != 1 {
                    return Err(serde::DeError::new(
                        "trace ref must have exactly one of `name`, `digest`, `path`, `inline`",
                    ));
                }
                let (key, val) = &pairs[0];
                match key.as_str() {
                    "name" => String::from_value(val).map(TraceRef::Name),
                    "digest" => TraceDigest::from_value(val).map(TraceRef::Digest),
                    "path" => String::from_value(val).map(TraceRef::Path),
                    "inline" => WorkloadTrace::from_value(val).map(TraceRef::Inline),
                    other => Err(serde::DeError::new(format!("unknown trace ref kind `{other}`"))),
                }
            }
            other => Err(serde::DeError::new(format!(
                "expected trace ref object or name string, got {other:?}"
            ))),
        }
    }
}

/// One serializable fork divergence, applied at the scenario's
/// `fork_at` instant (see [`simmr_core::Divergence`] for semantics).
///
/// Serialized as an object with exactly one key:
/// `{"policy": SPEC}` — hand the live queue to a different policy;
/// `{"add_slots": {"maps": N, "reduces": M}}` — grow the slot pools;
/// `{"fault": {"host": H, "at": MS}}` — permanently fail a host;
/// `{"surge": [JOB, ...]}` — inject extra job arrivals.
#[derive(Debug, Clone, PartialEq)]
pub enum DivergenceSpec {
    /// Swap the scheduling policy from the fork instant on.
    Policy(PolicySpec),
    /// Grow the map/reduce slot pools (grow-only, like the engine).
    AddSlots {
        /// Extra map slots.
        map_slots: usize,
        /// Extra reduce slots.
        reduce_slots: usize,
    },
    /// Permanently fail a host no earlier than the given instant (ms).
    Fault {
        /// Host to fail (host 0 never fails).
        host: u32,
        /// Failure instant in ms; clamped past the fork boundary.
        at_ms: u64,
    },
    /// Inject extra jobs (arrivals clamped past the fork boundary).
    Surge(Vec<JobSpec>),
}

impl DivergenceSpec {
    /// The engine-side divergence this spec describes.
    fn build(&self) -> Divergence {
        match self {
            DivergenceSpec::Policy(p) => Divergence::PolicySwap(p.build()),
            DivergenceSpec::AddSlots { map_slots, reduce_slots } => {
                Divergence::AddSlots { map_slots: *map_slots, reduce_slots: *reduce_slots }
            }
            DivergenceSpec::Fault { host, at_ms } => {
                Divergence::InjectFault { host: HostId(*host), at: SimTime::from_millis(*at_ms) }
            }
            DivergenceSpec::Surge(jobs) => Divergence::ArrivalSurge(jobs.clone()),
        }
    }
}

impl serde::Serialize for DivergenceSpec {
    fn to_value(&self) -> serde::Value {
        let (key, v) = match self {
            DivergenceSpec::Policy(p) => ("policy", p.to_value()),
            DivergenceSpec::AddSlots { map_slots, reduce_slots } => (
                "add_slots",
                serde::Value::Object(vec![
                    ("maps".to_owned(), map_slots.to_value()),
                    ("reduces".to_owned(), reduce_slots.to_value()),
                ]),
            ),
            DivergenceSpec::Fault { host, at_ms } => (
                "fault",
                serde::Value::Object(vec![
                    ("host".to_owned(), host.to_value()),
                    ("at".to_owned(), at_ms.to_value()),
                ]),
            ),
            DivergenceSpec::Surge(jobs) => ("surge", jobs.to_value()),
        };
        serde::Value::Object(vec![(key.to_owned(), v)])
    }
}

impl serde::Deserialize for DivergenceSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let serde::Value::Object(pairs) = v else {
            return Err(serde::DeError::new(format!("expected divergence object, got {v:?}")));
        };
        if pairs.len() != 1 {
            return Err(serde::DeError::new(
                "divergence must have exactly one of `policy`, `add_slots`, `fault`, `surge`",
            ));
        }
        let (key, val) = &pairs[0];
        match key.as_str() {
            "policy" => PolicySpec::from_value(val).map(DivergenceSpec::Policy),
            "add_slots" => {
                let sub = |name: &str| match val.get(name) {
                    None | Some(serde::Value::Null) => Ok(0usize),
                    Some(fv) => usize::from_value(fv)
                        .map_err(|e| serde::DeError::new(format!("add_slots.{name}: {e}"))),
                };
                Ok(DivergenceSpec::AddSlots {
                    map_slots: sub("maps")?,
                    reduce_slots: sub("reduces")?,
                })
            }
            "fault" => {
                let host = match val.get("host") {
                    Some(fv) => u32::from_value(fv)
                        .map_err(|e| serde::DeError::new(format!("fault.host: {e}")))?,
                    None => return Err(serde::DeError::new("fault divergence needs `host`")),
                };
                let at_ms = match val.get("at") {
                    None | Some(serde::Value::Null) => 0,
                    Some(fv) => u64::from_value(fv)
                        .map_err(|e| serde::DeError::new(format!("fault.at: {e}")))?,
                };
                Ok(DivergenceSpec::Fault { host, at_ms })
            }
            "surge" => Vec::<JobSpec>::from_value(val).map(DivergenceSpec::Surge),
            other => Err(serde::DeError::new(format!("unknown divergence kind `{other}`"))),
        }
    }
}

/// The complete, serializable description of one simulation run.
///
/// Construct with [`ScenarioSpec::new`] (which fills the CLI's defaults)
/// and set the public fields, or deserialize from a request body — only
/// `trace` and `policy` are required there; every other field defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The trace to replay.
    pub trace: TraceRef,
    /// The scheduling policy (canonical string form over the wire).
    pub policy: PolicySpec,
    /// Cluster shape: slot pools and the host count they stripe over.
    pub cluster: ClusterSpec,
    /// Seed shared by the deadline, fault, recovery and slowdown streams
    /// (mirroring the CLI's single `--seed`).
    pub seed: u64,
    /// Stamp §V-B deadlines: uniform in `[T_j, factor × T_j]` past each
    /// arrival, where `T_j` is the job's standalone duration.
    pub deadline_factor: Option<f64>,
    /// Number of planned fail-stop host losses; needs `cluster.hosts ≥ 2`.
    pub failures: Option<u32>,
    /// Mean inter-failure interval in seconds (used only with `failures`).
    pub failure_mtbf_s: f64,
    /// Mean host downtime in seconds; failures are permanent when absent.
    pub failure_recovery_s: Option<f64>,
    /// Speculative re-execution threshold (× median map duration).
    pub speculation: Option<f64>,
    /// Per-slot mean-1 LogNormal slowdown with this sigma.
    pub slowdown_sigma: Option<f64>,
    /// Slowstart override (fraction of maps before reduces start);
    /// `None` keeps the engine default.
    pub slowstart: Option<f64>,
    /// Skip per-job results (aggregate-only report).
    pub aggregate: bool,
    /// Record the per-task timeline in the report.
    pub timeline: bool,
    /// Run the engine's runtime invariant checker.
    pub check_invariants: bool,
    /// Fork instant in ms: run the scenario as a *fork* of its own
    /// prefix — the prefix runs (or warm-starts from a memoized
    /// checkpoint) up to the last settled batch boundary ≤ this instant,
    /// then `divergences` apply and the suffix runs to completion.
    pub fork_at: Option<u64>,
    /// Divergences applied at `fork_at`, in order. Needs `fork_at`.
    pub divergences: Vec<DivergenceSpec>,
}

impl ScenarioSpec {
    /// A scenario with the CLI's defaults: 64×64 single-host cluster,
    /// seed 1, no deadlines, failures, speculation or slowdown.
    pub fn new(trace: TraceRef, policy: PolicySpec) -> Self {
        ScenarioSpec {
            trace,
            policy,
            cluster: ClusterSpec::new(64, 64),
            seed: 1,
            deadline_factor: None,
            failures: None,
            failure_mtbf_s: 3600.0,
            failure_recovery_s: None,
            speculation: None,
            slowdown_sigma: None,
            slowstart: None,
            aggregate: false,
            timeline: false,
            check_invariants: false,
            fork_at: None,
            divergences: Vec::new(),
        }
    }

    /// Rewrites the spec to its canonical form: every knob clamped the
    /// way the engine would clamp it, parameters that cannot affect the
    /// run reset to defaults, capacity queues in name order. Equivalent
    /// specs normalize identically, so they share a cache key.
    pub fn normalize(&mut self) {
        self.cluster.hosts = self.cluster.hosts.max(1);
        if let PolicySpec::Capacity { queues } = &mut self.policy {
            // FromStr already sorts; programmatic construction may not
            queues.sort_by(|a, b| a.0.cmp(&b.0));
        }
        if self.failures.is_none() {
            // without failures the MTBF and recovery knobs are inert
            self.failure_mtbf_s = 3600.0;
            self.failure_recovery_s = None;
        }
        if let Some(df) = &mut self.deadline_factor {
            // attach_deadlines draws from [T_j, max(1, factor) × T_j]
            *df = df.max(1.0);
        }
        if let Some(f) = &mut self.speculation {
            // the engine clamps to ≥ 1 (duplicating non-stragglers is senseless)
            *f = f.max(1.0);
        }
        if let Some(s) = &mut self.slowstart {
            *s = s.clamp(0.0, 1.0);
        }
        if self.divergences.is_empty() {
            // a fork with no divergences replays the base scenario
            // byte-identically, so it shares the base cache entry
            self.fork_at = None;
        }
        for d in &mut self.divergences {
            if let DivergenceSpec::Policy(PolicySpec::Capacity { queues }) = d {
                queues.sort_by(|a, b| a.0.cmp(&b.0));
            }
        }
    }

    /// Rejects inconsistent specs with the CLI's rules.
    pub fn validate(&self) -> Result<(), FacadeError> {
        let bad = |msg: &str| Err(FacadeError::BadSpec(msg.into()));
        if self.failures.is_some() {
            if self.cluster.hosts < 2 {
                return bad("failures need a cluster of at least 2 hosts (host 0 never fails)");
            }
            if !(self.failure_mtbf_s.is_finite() && self.failure_mtbf_s > 0.0) {
                return bad("failure_mtbf_s must be positive");
            }
        }
        if let Some(rec) = self.failure_recovery_s {
            if self.failures.is_none() {
                return bad("failure_recovery_s needs failures");
            }
            if !(rec.is_finite() && rec > 0.0) {
                return bad("failure_recovery_s must be positive");
            }
        }
        if let Some(sigma) = self.slowdown_sigma {
            if !(sigma.is_finite() && sigma > 0.0) {
                return bad("slowdown_sigma must be positive");
            }
        }
        if let Some(df) = self.deadline_factor {
            if !df.is_finite() {
                return bad("deadline_factor must be finite");
            }
        }
        if !self.divergences.is_empty() && self.fork_at.is_none() {
            return bad("divergences need fork_at (the fork instant in ms)");
        }
        for d in &self.divergences {
            match d {
                DivergenceSpec::Fault { host, .. } => {
                    if self.cluster.hosts < 2 {
                        return bad("a fork fault needs a cluster of at least 2 hosts");
                    }
                    if *host == 0 || *host as usize >= self.cluster.hosts {
                        return Err(FacadeError::BadSpec(format!(
                            "fork fault names host {host} of a {}-host cluster \
                             (host 0 never fails)",
                            self.cluster.hosts
                        )));
                    }
                }
                DivergenceSpec::Surge(jobs) => {
                    if jobs.is_empty() {
                        return bad("a surge divergence needs at least one job");
                    }
                    for job in jobs {
                        job.template.validate().map_err(|e| {
                            FacadeError::BadSpec(format!("surge job template invalid: {e}"))
                        })?;
                    }
                }
                DivergenceSpec::Policy(_) | DivergenceSpec::AddSlots { .. } => {}
            }
        }
        Ok(())
    }

    /// The scenario's cache identity: compact JSON of the normalized
    /// spec with the trace reference replaced by the resolved content
    /// `digest`. Two specs with equal keys produce byte-identical
    /// reports (the engine is deterministic in everything the key pins).
    pub fn canonical_key(&self, digest: TraceDigest) -> String {
        let mut spec = self.clone();
        spec.normalize();
        let mut v = serde::Serialize::to_value(&spec);
        if let serde::Value::Object(pairs) = &mut v {
            for (k, val) in pairs.iter_mut() {
                if k == "trace" {
                    *val = serde::Value::Object(vec![(
                        "digest".to_owned(),
                        serde::Value::Str(digest.to_string()),
                    )]);
                }
            }
        }
        serde_json::to_string(&v).expect("value serialization is infallible")
    }

    /// The engine configuration this spec describes (trace-independent).
    fn engine_config(&self) -> EngineConfig {
        let mut config = EngineConfig::new(self.cluster.map_slots, self.cluster.reduce_slots)
            .with_cluster(self.cluster);
        if self.aggregate {
            config = config.without_job_results();
        }
        if self.timeline {
            config = config.with_timeline();
        }
        if self.check_invariants {
            config = config.with_invariants();
        }
        if let Some(count) = self.failures {
            config = config.with_faults(FaultSpec {
                seed: self.seed,
                count,
                mean_interval_ms: (self.failure_mtbf_s * 1000.0) as u64,
            });
        }
        if let Some(rec_s) = self.failure_recovery_s {
            config = config
                .with_recovery(RecoverySpec { seed: self.seed, mean_ms: (rec_s * 1000.0) as u64 });
        }
        if let Some(factor) = self.speculation {
            config = config.with_speculation(factor);
        }
        if let Some(sigma) = self.slowdown_sigma {
            // mean-1 LogNormal: perturbs without shifting the average
            let dist = Dist::LogNormal { mu: -sigma * sigma / 2.0, sigma };
            config = config.with_slowdown(dist, self.seed);
        }
        if let Some(fraction) = self.slowstart {
            config = config.with_slowstart(fraction);
        }
        config
    }

    /// The engine-side fork this spec describes (meaningful only when
    /// `fork_at` is set).
    fn fork_spec(&self) -> ForkSpec {
        ForkSpec::new(
            SimTime::from_millis(self.fork_at.unwrap_or(0)),
            self.divergences.iter().map(DivergenceSpec::build).collect(),
        )
    }
}

impl serde::Serialize for ScenarioSpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("trace".to_owned(), self.trace.to_value()),
            ("policy".to_owned(), self.policy.to_value()),
            ("cluster".to_owned(), self.cluster.to_value()),
            ("seed".to_owned(), self.seed.to_value()),
            ("deadline_factor".to_owned(), self.deadline_factor.to_value()),
            ("failures".to_owned(), self.failures.to_value()),
            ("failure_mtbf_s".to_owned(), self.failure_mtbf_s.to_value()),
            ("failure_recovery_s".to_owned(), self.failure_recovery_s.to_value()),
            ("speculation".to_owned(), self.speculation.to_value()),
            ("slowdown_sigma".to_owned(), self.slowdown_sigma.to_value()),
            ("slowstart".to_owned(), self.slowstart.to_value()),
            ("aggregate".to_owned(), self.aggregate.to_value()),
            ("timeline".to_owned(), self.timeline.to_value()),
            ("check_invariants".to_owned(), self.check_invariants.to_value()),
            ("fork_at".to_owned(), self.fork_at.to_value()),
            ("divergences".to_owned(), self.divergences.to_value()),
        ])
    }
}

impl serde::Deserialize for ScenarioSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        if !matches!(v, serde::Value::Object(_)) {
            return Err(serde::DeError::new("expected object for ScenarioSpec"));
        }
        fn field<T: serde::Deserialize>(v: &serde::Value, name: &str) -> Result<T, serde::DeError> {
            match v.get(name) {
                Some(fv) => T::from_value(fv)
                    .map_err(|e| serde::DeError::new(format!("ScenarioSpec.{name}: {e}"))),
                None => T::from_missing(name),
            }
        }
        fn field_or<T: serde::Deserialize>(
            v: &serde::Value,
            name: &str,
            default: T,
        ) -> Result<T, serde::DeError> {
            match v.get(name) {
                Some(serde::Value::Null) | None => Ok(default),
                Some(fv) => T::from_value(fv)
                    .map_err(|e| serde::DeError::new(format!("ScenarioSpec.{name}: {e}"))),
            }
        }
        let defaults = ScenarioSpec::new(TraceRef::Name(String::new()), PolicySpec::Fifo);
        Ok(ScenarioSpec {
            trace: field(v, "trace")?,
            policy: field(v, "policy")?,
            cluster: field_or(v, "cluster", defaults.cluster)?,
            seed: field_or(v, "seed", defaults.seed)?,
            deadline_factor: field(v, "deadline_factor")?,
            failures: field(v, "failures")?,
            failure_mtbf_s: field_or(v, "failure_mtbf_s", defaults.failure_mtbf_s)?,
            failure_recovery_s: field(v, "failure_recovery_s")?,
            speculation: field(v, "speculation")?,
            slowdown_sigma: field(v, "slowdown_sigma")?,
            slowstart: field(v, "slowstart")?,
            aggregate: field_or(v, "aggregate", false)?,
            timeline: field_or(v, "timeline", false)?,
            check_invariants: field_or(v, "check_invariants", false)?,
            fork_at: field(v, "fork_at")?,
            divergences: field_or(v, "divergences", Vec::new())?,
        })
    }
}

/// Why the facade rejected or failed a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum FacadeError {
    /// The spec itself is malformed or inconsistent.
    BadSpec(String),
    /// The trace reference could not be resolved or loaded.
    Trace(String),
}

impl FacadeError {
    /// The bare message, without the kind prefix [`fmt::Display`] adds —
    /// what the CLI surfaces, matching its pre-facade error strings.
    pub fn message(&self) -> &str {
        match self {
            FacadeError::BadSpec(msg) | FacadeError::Trace(msg) => msg,
        }
    }
}

impl fmt::Display for FacadeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FacadeError::BadSpec(msg) => write!(f, "bad scenario: {msg}"),
            FacadeError::Trace(msg) => write!(f, "trace: {msg}"),
        }
    }
}

impl std::error::Error for FacadeError {}

/// A scenario after trace resolution: normalized spec, the materialized
/// (and deadline-stamped, when asked) trace, its content digest and the
/// canonical cache key. Ready to run on any thread.
#[derive(Debug, Clone)]
pub struct ResolvedScenario {
    /// The normalized spec.
    pub spec: ScenarioSpec,
    /// The trace the engine will replay (deadlines already attached).
    pub trace: Arc<WorkloadTrace>,
    /// Content digest of the *stored* trace (pre-deadline-stamping, the
    /// same digest `trace list` prints).
    pub digest: TraceDigest,
    /// The scenario's canonical cache key.
    pub key: String,
}

impl ResolvedScenario {
    /// Runs the scenario. Deterministic: equal `key` ⇒ byte-identical
    /// report. Fork scenarios run their prefix from scratch here; pass a
    /// [`CkptCache`] to [`Self::run_warm`] to memoize the prefix instead.
    pub fn run(&self) -> FacadeRun {
        if self.spec.fork_at.is_some() {
            let report = SimulatorEngine::new(
                self.spec.engine_config(),
                &self.trace,
                self.spec.policy.build(),
            )
            .run_forked(self.spec.fork_spec())
            .expect("fork divergences are validated at resolve time");
            return self.wrap(report, None);
        }
        let report =
            SimulatorEngine::new(self.spec.engine_config(), &self.trace, self.spec.policy.build())
                .run();
        self.wrap(report, None)
    }

    /// Runs the scenario, warm-starting fork scenarios from the memoized
    /// prefix checkpoint in `ckpts` (computing and caching it on a miss).
    /// Byte-identical to [`Self::run`] — the warm path and the
    /// from-scratch path share the engine's fork application verbatim.
    pub fn run_warm(&self, ckpts: &CkptCache) -> FacadeRun {
        let Some(key) = self.ckpt_key() else { return self.run() };
        let (hit, ckpt) = match ckpts.get(&key) {
            Some(bytes) => (
                true,
                EngineCheckpoint::decode(&bytes)
                    .expect("cached checkpoint bytes decode (they were encoded right here)"),
            ),
            None => {
                let at = SimTime::from_millis(self.spec.fork_at.expect("fork key implies fork_at"));
                let ckpt = self.checkpoint(at);
                ckpts.insert(key, ckpt.encode().into());
                (false, ckpt)
            }
        };
        let mut engine = SimulatorEngine::resume_materialized(
            self.spec.engine_config(),
            &ckpt,
            self.spec.policy.build(),
        )
        .expect("checkpoint was captured under this exact prefix spec");
        engine
            .apply_fork(self.spec.fork_spec())
            .expect("fork divergences are validated at resolve time");
        let report = engine.try_run().expect("materialized engines cannot hit source errors");
        self.wrap(report, Some(hit))
    }

    /// Runs the scenario's prefix (fork fields excluded) and captures the
    /// engine checkpoint at the last settled batch boundary ≤ `at`.
    pub fn checkpoint(&self, at: SimTime) -> EngineCheckpoint {
        SimulatorEngine::new(self.spec.engine_config(), &self.trace, self.spec.policy.build())
            .checkpoint_at(at)
            .expect("materialized engines cannot hit source errors")
    }

    /// The memo key of the prefix checkpoint a fork scenario warm-starts
    /// from: the canonical key of the scenario *without* its fork fields,
    /// plus the fork instant. `None` for non-fork scenarios — note that
    /// fork scenarios differing only in divergences share this key, which
    /// is exactly what makes sweep fan-outs run the prefix once.
    pub fn ckpt_key(&self) -> Option<String> {
        let at = self.spec.fork_at?;
        let mut prefix = self.spec.clone();
        prefix.fork_at = None;
        prefix.divergences.clear();
        Some(format!("{}|ckpt@{at}", prefix.canonical_key(self.digest)))
    }

    /// Ensures the prefix checkpoint of a fork scenario is resident in
    /// `ckpts`, returning whether it already was. Non-fork scenarios are
    /// a no-op `true`.
    pub fn ensure_ckpt(&self, ckpts: &CkptCache) -> bool {
        let Some(key) = self.ckpt_key() else { return true };
        if ckpts.get(&key).is_some() {
            return true;
        }
        let at = SimTime::from_millis(self.spec.fork_at.expect("fork key implies fork_at"));
        ckpts.insert(key, self.checkpoint(at).encode().into());
        false
    }

    fn wrap(&self, report: SimulationReport, ckpt: Option<bool>) -> FacadeRun {
        FacadeRun {
            jobs: report.jobs.len(),
            report,
            digest: Some(self.digest),
            key: Some(self.key.clone()),
            streamed: false,
            ckpt,
        }
    }
}

/// The outcome of one facade run.
#[derive(Debug, Clone)]
pub struct FacadeRun {
    /// The engine's report.
    pub report: SimulationReport,
    /// Jobs replayed. For streamed runs this is the source's job count
    /// (the report's `jobs` vector may be empty under `aggregate`).
    pub jobs: usize,
    /// Content digest of the resolved trace; `None` for streamed binary
    /// files (digesting would defeat the O(active jobs) memory bound).
    pub digest: Option<TraceDigest>,
    /// Canonical cache key; `None` exactly when `digest` is.
    pub key: Option<String>,
    /// Whether the trace streamed through the engine unmaterialized.
    pub streamed: bool,
    /// For fork scenarios run via [`ResolvedScenario::run_warm`]:
    /// whether the prefix checkpoint came from the memo (`Some(true)`)
    /// or was computed (`Some(false)`). `None` otherwise.
    pub ckpt: Option<bool>,
}

/// Loads and validates a trace file, sniffing JSON vs SIMMRBIN by magic.
pub fn load_trace_file(path: &str) -> Result<WorkloadTrace, FacadeError> {
    let err = |msg: String| FacadeError::Trace(msg);
    let bytes = std::fs::read(path).map_err(|e| err(format!("cannot read `{path}`: {e}")))?;
    let trace: WorkloadTrace = if simmr_trace::is_binary_trace(&bytes) {
        simmr_trace::decode_trace(&bytes)
            .map_err(|e| err(format!("`{path}` is not a valid binary trace: {e}")))?
    } else {
        let text =
            std::str::from_utf8(&bytes).map_err(|_| err(format!("`{path}` is not a trace")))?;
        serde_json::from_str(text).map_err(|e| err(format!("`{path}` is not a trace: {e}")))?
    };
    trace.validate().map_err(|e| err(format!("`{path}` contains an invalid job: {e}")))?;
    Ok(trace)
}

/// Attaches §V-B-style deadlines to every job of a trace: each job's
/// relative deadline is uniform in `[T_j, max(1, factor) × T_j]`, where
/// `T_j` is its standalone FIFO duration on the given slot pools.
pub fn attach_deadlines(
    trace: &mut WorkloadTrace,
    factor: f64,
    map_slots: usize,
    reduce_slots: usize,
    seed: u64,
) {
    let mut rng = SeededRng::new(seed);
    for job in trace.jobs.iter_mut() {
        let mut single = WorkloadTrace::new("standalone", "cli");
        single.push(JobSpec::new(job.template.clone(), SimTime::ZERO));
        let report = SimulatorEngine::new(
            EngineConfig::new(map_slots, reduce_slots),
            &single,
            PolicySpec::Fifo.build(),
        )
        .run();
        let t_j = report.jobs[0].duration() as f64;
        let rel = rng.uniform(t_j, factor.max(1.0) * t_j);
        job.deadline = Some(job.arrival + rel as u64);
    }
}

/// The request-scoped engine facade: resolves [`ScenarioSpec`]s and runs
/// them. Holds no mutable state — an optional trace database handle is
/// all there is — so one facade serves any number of threads.
pub struct SimFacade {
    db: Option<TraceDatabase>,
}

impl SimFacade {
    /// A facade without a trace database: only `path` and `inline` trace
    /// refs resolve.
    pub fn new() -> Self {
        SimFacade { db: None }
    }

    /// A facade over the trace database at `dir` (created if absent).
    pub fn with_db(dir: impl AsRef<std::path::Path>) -> Result<Self, FacadeError> {
        let db = TraceDatabase::open(dir).map_err(|e| FacadeError::Trace(e.to_string()))?;
        Ok(SimFacade { db: Some(db) })
    }

    /// The underlying trace database, when configured.
    pub fn db(&self) -> Option<&TraceDatabase> {
        self.db.as_ref()
    }

    /// Resolves one scenario: normalizes and validates the spec,
    /// materializes the trace, stamps deadlines, computes digest and key.
    pub fn resolve(&self, spec: &ScenarioSpec) -> Result<ResolvedScenario, FacadeError> {
        self.resolve_many(std::slice::from_ref(spec)).pop().expect("one spec in, one result out")
    }

    /// Resolves a batch, loading and deadline-stamping each distinct
    /// trace exactly once however many scenarios share it. Per-scenario
    /// results: one bad spec does not fail its neighbours.
    pub fn resolve_many(
        &self,
        specs: &[ScenarioSpec],
    ) -> Vec<Result<ResolvedScenario, FacadeError>> {
        // materialized base traces by trace-ref identity, then
        // deadline-stamped variants by (ref, factor, slots, seed)
        let mut loaded: HashMap<String, Result<(Arc<WorkloadTrace>, TraceDigest), FacadeError>> =
            HashMap::new();
        let mut stamped: HashMap<String, Arc<WorkloadTrace>> = HashMap::new();
        specs
            .iter()
            .map(|spec| {
                let mut spec = spec.clone();
                spec.normalize();
                spec.validate()?;
                let ident = self.ref_ident(&spec.trace)?;
                let (base, digest) = loaded
                    .entry(ident.clone())
                    .or_insert_with(|| self.materialize(&spec.trace))
                    .clone()?;
                let trace = match spec.deadline_factor {
                    None => base,
                    Some(df) => {
                        let stamp_key = format!(
                            "{ident}|df={df}|m={}|r={}|s={}",
                            spec.cluster.map_slots, spec.cluster.reduce_slots, spec.seed
                        );
                        stamped
                            .entry(stamp_key)
                            .or_insert_with(|| {
                                let mut t = (*base).clone();
                                attach_deadlines(
                                    &mut t,
                                    df,
                                    spec.cluster.map_slots,
                                    spec.cluster.reduce_slots,
                                    spec.seed,
                                );
                                Arc::new(t)
                            })
                            .clone()
                    }
                };
                let key = spec.canonical_key(digest);
                Ok(ResolvedScenario { spec, trace, digest, key })
            })
            .collect()
    }

    /// Runs one scenario.
    ///
    /// Binary trace files referenced by `path` (without deadline
    /// stamping) keep the CLI's streaming path: the engine pulls jobs
    /// from the file one arrival at a time and the run yields no digest
    /// or cache key.
    pub fn run(&self, spec: &ScenarioSpec) -> Result<FacadeRun, FacadeError> {
        if let TraceRef::Path(path) = &spec.trace {
            // forks need the materialized resume path, deadline stamping
            // rewrites the trace — both opt out of streaming
            if spec.deadline_factor.is_none()
                && spec.fork_at.is_none()
                && spec.divergences.is_empty()
                && file_is_binary_trace(path)
            {
                let mut spec = spec.clone();
                spec.normalize();
                spec.validate()?;
                let source = BinTraceSource::open(path)
                    .map_err(|e| FacadeError::Trace(format!("`{path}`: {e}")))?;
                let jobs = source.job_count();
                let report = SimulatorEngine::from_source(
                    spec.engine_config(),
                    Box::new(source),
                    spec.policy.build(),
                )
                .try_run()
                .map_err(|e| FacadeError::Trace(e.to_string()))?;
                return Ok(FacadeRun {
                    report,
                    jobs,
                    digest: None,
                    key: None,
                    streamed: true,
                    ckpt: None,
                });
            }
        }
        Ok(self.resolve(spec)?.run())
    }

    /// Runs a batch of scenarios across all cores with one
    /// [`parallel_sweep`] after batched resolution. Results stay in
    /// request order; each scenario fails independently.
    pub fn run_batch(&self, specs: &[ScenarioSpec]) -> Vec<Result<FacadeRun, FacadeError>> {
        let resolved = self.resolve_many(specs);
        let runnable: Vec<&ResolvedScenario> =
            resolved.iter().filter_map(|r| r.as_ref().ok()).collect();
        let mut runs = parallel_sweep(runnable.len(), |i| runnable[i].run()).into_iter();
        resolved
            .iter()
            .map(|r| match r {
                Ok(_) => Ok(runs.next().expect("one run per resolved scenario")),
                Err(e) => Err(e.clone()),
            })
            .collect()
    }

    /// A stable identity for memoizing trace loads within one batch.
    fn ref_ident(&self, r: &TraceRef) -> Result<String, FacadeError> {
        Ok(match r {
            TraceRef::Name(n) => format!("name:{n}"),
            TraceRef::Digest(d) => format!("digest:{d}"),
            TraceRef::Path(p) => format!("path:{p}"),
            TraceRef::Inline(t) => format!(
                "inline:{}",
                digest_trace(t).map_err(|e| FacadeError::Trace(e.to_string()))?
            ),
        })
    }

    /// Materializes a trace reference into a validated trace + digest.
    fn materialize(&self, r: &TraceRef) -> Result<(Arc<WorkloadTrace>, TraceDigest), FacadeError> {
        let trace = match r {
            TraceRef::Name(name) => {
                self.require_db()?.load(name).map_err(|e| FacadeError::Trace(e.to_string()))?
            }
            TraceRef::Digest(digest) => {
                let db = self.require_db()?;
                let name = db
                    .find_by_digest(*digest)
                    .map_err(|e| FacadeError::Trace(e.to_string()))?
                    .ok_or_else(|| {
                        FacadeError::Trace(format!("no stored trace has digest {digest}"))
                    })?;
                db.load(&name).map_err(|e| FacadeError::Trace(e.to_string()))?
            }
            TraceRef::Path(path) => load_trace_file(path)?,
            TraceRef::Inline(trace) => {
                trace.validate().map_err(|e| {
                    FacadeError::Trace(format!("inline trace has an invalid job: {e}"))
                })?;
                trace.clone()
            }
        };
        let digest = digest_trace(&trace).map_err(|e| FacadeError::Trace(e.to_string()))?;
        Ok((Arc::new(trace), digest))
    }

    fn require_db(&self) -> Result<&TraceDatabase, FacadeError> {
        self.db.as_ref().ok_or_else(|| {
            FacadeError::Trace("named trace refs need a trace database (serve --db DIR)".into())
        })
    }
}

impl Default for SimFacade {
    fn default() -> Self {
        SimFacade::new()
    }
}

/// Sniffs whether the file at `path` starts with the SIMMRBIN magic.
fn file_is_binary_trace(path: &str) -> bool {
    use std::io::Read;
    let Ok(mut file) = std::fs::File::open(path) else { return false };
    let mut magic = [0u8; 8];
    let mut filled = 0;
    while filled < magic.len() {
        match file.read(&mut magic[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(_) => return false,
        }
    }
    simmr_trace::is_binary_trace(&magic[..filled])
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmr_types::JobTemplate;

    fn tiny_trace() -> WorkloadTrace {
        let mut t = WorkloadTrace::new("facade test", "unit");
        for (name, arrival) in [("prod-a", 0u64), ("adhoc-b", 1_000)] {
            t.push(JobSpec::new(
                JobTemplate::new(name, vec![500, 700], vec![300], vec![250], vec![200]).unwrap(),
                SimTime::from_millis(arrival),
            ));
        }
        t
    }

    fn spec() -> ScenarioSpec {
        ScenarioSpec::new(TraceRef::Inline(tiny_trace()), PolicySpec::Fifo)
    }

    #[test]
    fn spec_serde_round_trip_with_defaults() {
        let s = spec();
        let json = serde_json::to_string(&s).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        // minimal request: only trace and policy
        let minimal: ScenarioSpec =
            serde_json::from_str(r#"{"trace": "nightly", "policy": "maxedf"}"#).unwrap();
        assert_eq!(minimal.trace, TraceRef::Name("nightly".into()));
        assert_eq!(minimal.policy.to_string(), "maxedf");
        assert_eq!(minimal.cluster, ClusterSpec::new(64, 64));
        assert_eq!(minimal.seed, 1);
        assert!(!minimal.aggregate);
    }

    #[test]
    fn canonical_key_unifies_equivalent_specs() {
        let digest = digest_trace(&tiny_trace()).unwrap();
        let mut a = spec();
        a.policy = "capacity:prod=3,adhoc=1".parse().unwrap();
        let mut b = spec();
        b.policy = "capacity:adhoc=1,prod=3".parse().unwrap();
        // knob clamping also normalizes into the key
        a.speculation = Some(0.5);
        b.speculation = Some(1.0);
        assert_eq!(a.canonical_key(digest), b.canonical_key(digest));
        // ...but a real difference separates keys
        b.seed = 2;
        assert_ne!(a.canonical_key(digest), b.canonical_key(digest));
    }

    #[test]
    fn key_is_trace_ref_spelling_independent() {
        let digest = digest_trace(&tiny_trace()).unwrap();
        let inline = spec();
        let named = ScenarioSpec::new(TraceRef::Name("whatever".into()), PolicySpec::Fifo);
        assert_eq!(inline.canonical_key(digest), named.canonical_key(digest));
    }

    #[test]
    fn validation_mirrors_the_cli() {
        let mut s = spec();
        s.failures = Some(1);
        assert!(matches!(s.validate(), Err(FacadeError::BadSpec(_))));
        s.cluster = s.cluster.with_hosts(4);
        assert!(s.validate().is_ok());
        s.failure_recovery_s = Some(-1.0);
        assert!(s.validate().is_err());
        let mut s = spec();
        s.failure_recovery_s = Some(30.0);
        assert!(s.validate().is_err(), "recovery without failures");
    }

    #[test]
    fn run_and_batch_agree() {
        let facade = SimFacade::new();
        let one = facade.run(&spec()).unwrap();
        assert!(!one.streamed);
        assert_eq!(one.report.jobs.len(), 2);
        let batch = facade.run_batch(&[spec(), spec()]);
        let reports: Vec<_> = batch.into_iter().map(|r| r.unwrap().report).collect();
        assert_eq!(reports[0], one.report);
        assert_eq!(reports[1], one.report);
    }

    #[test]
    fn batch_failures_are_per_scenario() {
        let facade = SimFacade::new();
        let bad = ScenarioSpec::new(TraceRef::Name("nope".into()), PolicySpec::Fifo);
        let out = facade.run_batch(&[spec(), bad]);
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(FacadeError::Trace(_))));
    }

    #[test]
    fn deadline_stamping_matches_manual_attachment() {
        let mut manual = tiny_trace();
        attach_deadlines(&mut manual, 2.0, 64, 64, 7);
        let mut s = spec();
        s.deadline_factor = Some(2.0);
        s.seed = 7;
        let resolved = SimFacade::new().resolve(&s).unwrap();
        assert_eq!(resolved.trace.jobs[0].deadline, manual.jobs[0].deadline);
        assert_eq!(resolved.trace.jobs[1].deadline, manual.jobs[1].deadline);
        // the digest is of the stored trace, not the stamped one
        assert_eq!(resolved.digest, digest_trace(&tiny_trace()).unwrap());
    }

    fn forked_spec(at: u64, divergences: Vec<DivergenceSpec>) -> ScenarioSpec {
        let mut s = spec();
        s.cluster = ClusterSpec::new(4, 4).with_hosts(4);
        s.fork_at = Some(at);
        s.divergences = divergences;
        s
    }

    #[test]
    fn fork_fields_serde_round_trip_and_minimal_json() {
        let s = forked_spec(
            700,
            vec![
                DivergenceSpec::Policy("fair".parse().unwrap()),
                DivergenceSpec::AddSlots { map_slots: 2, reduce_slots: 0 },
                DivergenceSpec::Fault { host: 2, at_ms: 900 },
                DivergenceSpec::Surge(tiny_trace().jobs),
            ],
        );
        let json = serde_json::to_string(&s).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        // minimal spellings: absent sub-fields default to 0
        let minimal: ScenarioSpec = serde_json::from_str(
            r#"{"trace": "t", "policy": "fifo", "fork_at": 700, "divergences":
                [{"add_slots": {"maps": 3}}, {"fault": {"host": 1}}, {"policy": "maxedf"}]}"#,
        )
        .unwrap();
        assert_eq!(minimal.fork_at, Some(700));
        assert_eq!(
            minimal.divergences,
            vec![
                DivergenceSpec::AddSlots { map_slots: 3, reduce_slots: 0 },
                DivergenceSpec::Fault { host: 1, at_ms: 0 },
                DivergenceSpec::Policy("maxedf".parse().unwrap()),
            ]
        );
        // malformed divergences are rejected, not ignored
        for bad in [
            r#"{"trace": "t", "policy": "fifo", "divergences": [{"warp": 9}]}"#,
            r#"{"trace": "t", "policy": "fifo", "divergences": [{"policy": "fifo", "fault": {"host": 1}}]}"#,
        ] {
            assert!(serde_json::from_str::<ScenarioSpec>(bad).is_err());
        }
    }

    #[test]
    fn fork_validation_rejections() {
        let mut s = spec();
        s.divergences.push(DivergenceSpec::Policy(PolicySpec::Fifo));
        assert!(matches!(s.validate(), Err(FacadeError::BadSpec(_))), "divergences need fork_at");
        for host in [0u32, 9] {
            let s = forked_spec(700, vec![DivergenceSpec::Fault { host, at_ms: 0 }]);
            assert!(s.validate().is_err(), "host {host} is not a failable host of 4");
        }
        let mut s = forked_spec(700, vec![DivergenceSpec::Fault { host: 2, at_ms: 0 }]);
        assert!(s.validate().is_ok());
        s.cluster = ClusterSpec::new(4, 4);
        assert!(s.validate().is_err(), "a single-host cluster has no failable host");
        let s = forked_spec(700, vec![DivergenceSpec::Surge(Vec::new())]);
        assert!(s.validate().is_err(), "an empty surge is a spec mistake");
    }

    #[test]
    fn normalize_drops_fork_without_divergences() {
        let mut s = spec();
        s.fork_at = Some(500);
        s.normalize();
        assert_eq!(s.fork_at, None, "a fork with no divergences is the base scenario");
        // ...so it shares the base scenario's cache identity
        let digest = digest_trace(&tiny_trace()).unwrap();
        let mut forked = spec();
        forked.fork_at = Some(500);
        assert_eq!(forked.canonical_key(digest), spec().canonical_key(digest));
    }

    #[test]
    fn warm_fork_matches_cold_and_shares_checkpoints() {
        let facade = SimFacade::new();
        let ckpts = CkptCache::new(4, 64);
        let a = forked_spec(700, vec![DivergenceSpec::Policy("fair".parse().unwrap())]);
        let b = forked_spec(700, vec![DivergenceSpec::AddSlots { map_slots: 2, reduce_slots: 2 }]);
        let ra = facade.resolve(&a).unwrap();
        let rb = facade.resolve(&b).unwrap();
        assert_eq!(ra.ckpt_key(), rb.ckpt_key(), "divergences don't change the prefix identity");
        assert!(ra.ckpt_key().is_some());
        let cold = ra.run();
        assert_eq!(cold.ckpt, None);
        let warm = ra.run_warm(&ckpts);
        assert_eq!(warm.ckpt, Some(false), "first warm run computes the checkpoint");
        assert_eq!(warm.report, cold.report, "warm-start is byte-identical to the cold fork");
        let sibling = rb.run_warm(&ckpts);
        assert_eq!(sibling.ckpt, Some(true), "sibling scenario reuses the cached prefix");
        assert_eq!(sibling.report, rb.run().report);
        assert_eq!(ckpts.len(), 1, "one shared prefix checkpoint");
    }
}
