//! # simmr-apps
//!
//! Models of the six benchmark applications the paper runs on its 66-node
//! testbed (§IV-C), plus the datasets they process:
//!
//! 1. **WordCount** — word frequencies over the 32/40/43 GB Wikipedia
//!    article-history dumps;
//! 2. **Sort** — 16/32/64 GB of GridMix2 random text;
//! 3. **Bayes** — the Mahout Bayesian-classification trainer step over the
//!    Wikipedia dataset split at page boundaries;
//! 4. **TF-IDF** — the Mahout TF-IDF example over the Wikipedia dataset;
//! 5. **WikiTrends** — article-visit counting over the Trending-Topics
//!    Wikipedia traffic logs (April–June 2010);
//! 6. **Twitter** — asymmetric-link counting over the 12/18/25 GB Kwak et
//!    al. twitter follower graph.
//!
//! We obviously cannot ship those datasets; each application is instead a
//! **cost model** ([`AppModel`]): per-map-task compute-time distribution,
//! map selectivity (intermediate bytes out per input byte), reduce count
//! and reduce-phase compute distribution. The `simmr-cluster` testbed
//! simulator executes these models block-by-block with locality, node
//! speed, and shuffle-bandwidth effects layered on top, which is what makes
//! "real" executions of the same application differ run to run — exactly
//! the variability Table I measures.

pub mod catalog;
pub mod model;

pub use catalog::{standard_suite, Dataset, DATASETS};
pub use model::{AppKind, AppModel, JobModel};
