//! Dataset catalog (§IV-C).

use crate::model::{AppKind, JobModel};
use serde::impl_serde_struct;

/// A dataset an application can process.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Display label, e.g. `"40GB"`.
    pub label: &'static str,
    /// Size in gigabytes.
    pub size_gb: f64,
}

impl_serde_struct!(Dataset { label, size_gb });

/// The three datasets per application, per §IV-C of the paper. WikiTrends
/// log sizes are not stated in the paper; we use plausible compressed-log
/// volumes for three months of hourly Wikipedia traffic dumps (documented
/// substitution, see DESIGN.md).
pub const DATASETS: [(AppKind, [Dataset; 3]); 6] = [
    (
        AppKind::WordCount,
        [
            Dataset { label: "32GB", size_gb: 32.0 },
            Dataset { label: "40GB", size_gb: 40.0 },
            Dataset { label: "43GB", size_gb: 43.0 },
        ],
    ),
    (
        AppKind::Sort,
        [
            Dataset { label: "16GB", size_gb: 16.0 },
            Dataset { label: "32GB", size_gb: 32.0 },
            Dataset { label: "64GB", size_gb: 64.0 },
        ],
    ),
    (
        AppKind::Bayes,
        [
            Dataset { label: "32GB", size_gb: 32.0 },
            Dataset { label: "40GB", size_gb: 40.0 },
            Dataset { label: "43GB", size_gb: 43.0 },
        ],
    ),
    (
        AppKind::TfIdf,
        [
            Dataset { label: "32GB", size_gb: 32.0 },
            Dataset { label: "40GB", size_gb: 40.0 },
            Dataset { label: "43GB", size_gb: 43.0 },
        ],
    ),
    (
        AppKind::WikiTrends,
        [
            Dataset { label: "55GB", size_gb: 55.0 },
            Dataset { label: "60GB", size_gb: 60.0 },
            Dataset { label: "65GB", size_gb: 65.0 },
        ],
    ),
    (
        AppKind::Twitter,
        [
            Dataset { label: "12GB", size_gb: 12.0 },
            Dataset { label: "18GB", size_gb: 18.0 },
            Dataset { label: "25GB", size_gb: 25.0 },
        ],
    ),
];

/// Returns the datasets configured for one application.
pub fn datasets_for(kind: AppKind) -> &'static [Dataset; 3] {
    &DATASETS.iter().find(|(k, _)| *k == kind).expect("every AppKind has catalog datasets").1
}

/// The full 18-job suite: every application on each of its three datasets
/// (the paper's "six applications executed on three different datasets").
/// `which` selects dataset indices to include (e.g. `&[1]` = mid size only).
pub fn standard_suite(which: &[usize]) -> Vec<JobModel> {
    let mut jobs = Vec::new();
    for (kind, datasets) in &DATASETS {
        for &i in which {
            let ds = &datasets[i.min(2)];
            jobs.push(kind.model().instantiate(ds));
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_suite_is_18_jobs() {
        let suite = standard_suite(&[0, 1, 2]);
        assert_eq!(suite.len(), 18);
        let mut names: Vec<&str> = suite.iter().map(|j| j.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18, "job names must be unique");
    }

    #[test]
    fn single_dataset_suite() {
        let suite = standard_suite(&[1]);
        assert_eq!(suite.len(), 6);
        assert!(suite.iter().any(|j| j.name == "WordCount-40GB"));
        assert!(suite.iter().any(|j| j.name == "Sort-32GB"));
    }

    #[test]
    fn datasets_lookup() {
        let ds = datasets_for(AppKind::Twitter);
        assert_eq!(ds[0].size_gb, 12.0);
        assert_eq!(ds[2].size_gb, 25.0);
    }

    #[test]
    fn out_of_range_index_clamps() {
        let suite = standard_suite(&[9]);
        assert_eq!(suite.len(), 6);
        assert!(suite.iter().any(|j| j.name == "WordCount-43GB"));
    }
}
