//! Application cost models.

use crate::catalog::Dataset;
use serde::impl_serde_unit_enum;
use simmr_stats::Dist;

/// HDFS block size used throughout (the testbed's 64 MB default, §IV-B).
pub const BLOCK_MB: f64 = 64.0;

/// The six paper applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Word-frequency counting (map-heavy, moderate shuffle).
    WordCount,
    /// GridMix-style sort (trivial map, shuffle- and reduce-heavy).
    Sort,
    /// Mahout Bayes trainer step (compute-heavy map, light shuffle).
    Bayes,
    /// Mahout TF-IDF (fast map, substantial shuffle).
    TfIdf,
    /// Trending-Topics log aggregation (longest jobs, heavy shuffle).
    WikiTrends,
    /// Twitter asymmetric-link counting (moderate everything).
    Twitter,
}

impl_serde_unit_enum!(AppKind { WordCount, Sort, Bayes, TfIdf, WikiTrends, Twitter });

impl AppKind {
    /// All six applications, in the paper's §IV-C order.
    pub const ALL: [AppKind; 6] = [
        AppKind::WordCount,
        AppKind::Sort,
        AppKind::Bayes,
        AppKind::TfIdf,
        AppKind::WikiTrends,
        AppKind::Twitter,
    ];

    /// Short display name (matches the Figure 5 x-axis labels).
    pub const fn short_name(self) -> &'static str {
        match self {
            AppKind::WordCount => "WC",
            AppKind::Sort => "Sort",
            AppKind::Bayes => "Bayes",
            AppKind::TfIdf => "TFIDF",
            AppKind::WikiTrends => "WT",
            AppKind::Twitter => "Twitter",
        }
    }

    /// Full application name.
    pub const fn full_name(self) -> &'static str {
        match self {
            AppKind::WordCount => "WordCount",
            AppKind::Sort => "Sort",
            AppKind::Bayes => "Bayes",
            AppKind::TfIdf => "TFIDF",
            AppKind::WikiTrends => "WikiTrends",
            AppKind::Twitter => "Twitter",
        }
    }

    /// The cost model for this application.
    ///
    /// Rates are loosely calibrated so the mid-size dataset run on the
    /// paper's 64×64-slot cluster lands in the completion-time ballpark of
    /// Figure 5(a) (WC 251 s, WT 1271 s, Twitter 276 s, Sort 88 s,
    /// TFIDF 66 s, Bayes 476 s).
    pub fn model(self) -> AppModel {
        match self {
            AppKind::WordCount => AppModel {
                kind: self,
                // tokenizing 64 MB of article text
                map_time_s: Dist::LogNormal { mu: 2.71, sigma: 0.30 }, // ~15 s median
                selectivity: 0.80,
                num_reduces: 256,
                reduce_time_s: Dist::LogNormal { mu: 1.39, sigma: 0.35 }, // ~4 s
            },
            AppKind::Sort => AppModel {
                kind: self,
                // identity map over random text
                map_time_s: Dist::LogNormal { mu: 1.31, sigma: 0.25 }, // ~3.7 s
                selectivity: 1.0,
                num_reduces: 128,
                reduce_time_s: Dist::LogNormal { mu: 2.48, sigma: 0.30 }, // ~12 s
            },
            AppKind::Bayes => AppModel {
                kind: self,
                // feature extraction is compute-heavy
                map_time_s: Dist::LogNormal { mu: 3.81, sigma: 0.40 }, // ~45 s
                selectivity: 0.10,
                num_reduces: 64,
                reduce_time_s: Dist::LogNormal { mu: 2.08, sigma: 0.35 }, // ~8 s
            },
            AppKind::TfIdf => AppModel {
                kind: self,
                map_time_s: Dist::LogNormal { mu: 1.10, sigma: 0.30 }, // ~3 s
                selectivity: 0.25,
                num_reduces: 128,
                reduce_time_s: Dist::LogNormal { mu: 0.92, sigma: 0.30 }, // ~2.5 s
            },
            AppKind::WikiTrends => AppModel {
                kind: self,
                // decompressing + parsing hourly traffic logs; intermediate
                // data *expands* relative to the compressed input
                map_time_s: Dist::LogNormal { mu: 4.17, sigma: 0.45 }, // ~65 s
                selectivity: 1.30,
                num_reduces: 256,
                reduce_time_s: Dist::LogNormal { mu: 2.48, sigma: 0.40 }, // ~12 s
            },
            AppKind::Twitter => AppModel {
                kind: self,
                map_time_s: Dist::LogNormal { mu: 3.87, sigma: 0.30 }, // ~48 s
                selectivity: 0.50,
                num_reduces: 128,
                reduce_time_s: Dist::LogNormal { mu: 1.79, sigma: 0.35 }, // ~6 s
            },
        }
    }
}

/// The per-application cost model: everything the testbed simulator needs
/// to "execute" the application on a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppModel {
    /// Which application this models.
    pub kind: AppKind,
    /// Per-map-task compute-time distribution, in seconds, for one 64 MB
    /// block on a reference-speed node with node-local data.
    pub map_time_s: Dist,
    /// Intermediate bytes emitted per input byte.
    pub selectivity: f64,
    /// Number of reduce tasks the application configures.
    pub num_reduces: usize,
    /// Per-reduce-task compute-time (reduce function only) distribution in
    /// seconds.
    pub reduce_time_s: Dist,
}

impl AppModel {
    /// Instantiates the model on a dataset, producing the concrete job the
    /// cluster simulator executes.
    pub fn instantiate(&self, dataset: &Dataset) -> JobModel {
        let input_mb = dataset.size_gb * 1024.0;
        let num_maps = (input_mb / BLOCK_MB).ceil().max(1.0) as usize;
        let intermediate_mb = input_mb * self.selectivity;
        JobModel {
            name: format!("{}-{}GB", self.kind.full_name(), dataset.size_gb),
            kind: self.kind,
            num_maps,
            num_reduces: self.num_reduces,
            map_time_s: self.map_time_s,
            reduce_time_s: self.reduce_time_s,
            input_mb_per_map: BLOCK_MB,
            shuffle_mb_per_reduce: intermediate_mb / self.num_reduces as f64,
        }
    }
}

/// A concrete job: an application instantiated on a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct JobModel {
    /// `"WordCount-40GB"`-style label.
    pub name: String,
    /// The application.
    pub kind: AppKind,
    /// Map tasks (one per 64 MB input block).
    pub num_maps: usize,
    /// Reduce tasks.
    pub num_reduces: usize,
    /// Map compute-time distribution (seconds/block, reference node,
    /// node-local read).
    pub map_time_s: Dist,
    /// Reduce-function compute-time distribution (seconds).
    pub reduce_time_s: Dist,
    /// Input read per map task (MB).
    pub input_mb_per_map: f64,
    /// Intermediate data each reduce task must fetch during shuffle (MB).
    pub shuffle_mb_per_reduce: f64,
}

impl JobModel {
    /// A synthetic job with explicit task counts — used for the paper's
    /// §II motivating example (WordCount with 200 maps and 256 reduces).
    pub fn with_task_counts(kind: AppKind, num_maps: usize, num_reduces: usize) -> JobModel {
        let model = kind.model();
        let input_mb = num_maps as f64 * BLOCK_MB;
        JobModel {
            name: format!("{}-{}x{}", kind.full_name(), num_maps, num_reduces),
            kind,
            num_maps,
            num_reduces,
            map_time_s: model.map_time_s,
            reduce_time_s: model.reduce_time_s,
            input_mb_per_map: BLOCK_MB,
            shuffle_mb_per_reduce: input_mb * model.selectivity / num_reduces.max(1) as f64,
        }
    }

    /// Total intermediate data shuffled, in MB.
    pub fn total_shuffle_mb(&self) -> f64 {
        self.shuffle_mb_per_reduce * self.num_reduces as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Dataset;

    #[test]
    fn six_apps_with_distinct_names() {
        let mut names: Vec<&str> = AppKind::ALL.iter().map(|a| a.short_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn instantiation_block_math() {
        let ds = Dataset { label: "32GB", size_gb: 32.0 };
        let job = AppKind::WordCount.model().instantiate(&ds);
        // 32 GB / 64 MB = 512 blocks
        assert_eq!(job.num_maps, 512);
        assert_eq!(job.num_reduces, 256);
        assert_eq!(job.input_mb_per_map, 64.0);
        assert_eq!(job.name, "WordCount-32GB");
        // selectivity 0.80: intermediate = 32*1024*0.80 MB over 256 reduces
        let expected = 32.0 * 1024.0 * 0.80 / 256.0;
        assert!((job.shuffle_mb_per_reduce - expected).abs() < 1e-9);
    }

    #[test]
    fn tiny_dataset_still_one_map() {
        let ds = Dataset { label: "tiny", size_gb: 0.001 };
        let job = AppKind::Sort.model().instantiate(&ds);
        assert_eq!(job.num_maps, 1);
    }

    #[test]
    fn sort_has_unit_selectivity() {
        let model = AppKind::Sort.model();
        assert_eq!(model.selectivity, 1.0);
        let ds = Dataset { label: "16GB", size_gb: 16.0 };
        let job = model.instantiate(&ds);
        assert!((job.total_shuffle_mb() - 16.0 * 1024.0).abs() < 1e-6);
    }

    #[test]
    fn paper_example_counts() {
        let job = JobModel::with_task_counts(AppKind::WordCount, 200, 256);
        assert_eq!(job.num_maps, 200);
        assert_eq!(job.num_reduces, 256);
        assert_eq!(job.name, "WordCount-200x256");
    }

    #[test]
    fn app_relative_map_costs() {
        // WikiTrends maps are the slowest, Sort maps the fastest — the
        // ordering driving the paper's job-length spread.
        use simmr_stats::Distribution;
        let mean = |k: AppKind| k.model().map_time_s.mean().unwrap();
        assert!(mean(AppKind::WikiTrends) > mean(AppKind::Bayes));
        assert!(mean(AppKind::Bayes) > mean(AppKind::WordCount));
        assert!(mean(AppKind::WordCount) > mean(AppKind::Sort));
    }
}
