//! The cluster shape shared by the engine and the scheduling policies.
//!
//! SimMR models the cluster as two flat slot pools (§III-B); the failure
//! model additionally needs to know *which worker host* each slot lives on,
//! so that a host failure takes out the right set of slots and completed
//! map outputs. [`ClusterSpec`] names the three numbers — previously a bare
//! `(usize, usize)` tuple threaded positionally through
//! `SchedulerPolicy::on_job_arrival` — and owns the deterministic
//! slot-to-host striping.

use crate::HostId;
use serde::impl_serde_struct;

/// The simulated cluster's shape: slot pools plus the worker-host count.
///
/// Slots are striped over hosts round-robin (`slot % hosts`), separately
/// for the map and reduce pools, so every host carries a near-equal share
/// of each kind. With the default single host the classic SimMR
/// abstraction is recovered exactly: one failure would take the whole
/// cluster, and the striping is the identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Total map slots in the cluster.
    pub map_slots: usize,
    /// Total reduce slots in the cluster.
    pub reduce_slots: usize,
    /// Number of worker hosts the slots are striped over (≥ 1).
    pub hosts: usize,
}

impl_serde_struct!(ClusterSpec { map_slots, reduce_slots, hosts });

impl ClusterSpec {
    /// A single-host cluster with the given slot pools — the paper's
    /// failure-free model.
    pub fn new(map_slots: usize, reduce_slots: usize) -> Self {
        ClusterSpec { map_slots, reduce_slots, hosts: 1 }
    }

    /// Stripes the slots over `hosts` workers (clamped to ≥ 1).
    pub fn with_hosts(mut self, hosts: usize) -> Self {
        self.hosts = hosts.max(1);
        self
    }

    /// The host carrying a map slot.
    pub fn map_slot_host(&self, slot: u32) -> HostId {
        HostId(slot % self.hosts as u32)
    }

    /// The host carrying a reduce slot.
    pub fn reduce_slot_host(&self, slot: u32) -> HostId {
        HostId(slot % self.hosts as u32)
    }

    /// Number of map slots on one host.
    pub fn map_slots_of(&self, host: HostId) -> usize {
        pool_share(self.map_slots, self.hosts, host)
    }

    /// Number of reduce slots on one host.
    pub fn reduce_slots_of(&self, host: HostId) -> usize {
        pool_share(self.reduce_slots, self.hosts, host)
    }
}

/// Slots of a `pool`-sized round-robin striping landing on `host`.
fn pool_share(pool: usize, hosts: usize, host: HostId) -> usize {
    let h = host.index();
    if h >= hosts {
        return 0;
    }
    pool / hosts + usize::from(h < pool % hosts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_host_default() {
        let c = ClusterSpec::new(4, 2);
        assert_eq!((c.map_slots, c.reduce_slots, c.hosts), (4, 2, 1));
        assert_eq!(c.map_slot_host(3), HostId(0));
        assert_eq!(c.map_slots_of(HostId(0)), 4);
        assert_eq!(c.reduce_slots_of(HostId(0)), 2);
    }

    #[test]
    fn round_robin_striping() {
        let c = ClusterSpec::new(5, 3).with_hosts(2);
        assert_eq!(c.map_slot_host(0), HostId(0));
        assert_eq!(c.map_slot_host(1), HostId(1));
        assert_eq!(c.map_slot_host(4), HostId(0));
        // host 0 gets the extra slot of an odd pool
        assert_eq!(c.map_slots_of(HostId(0)), 3);
        assert_eq!(c.map_slots_of(HostId(1)), 2);
        assert_eq!(c.reduce_slots_of(HostId(0)), 2);
        assert_eq!(c.reduce_slots_of(HostId(1)), 1);
        // shares always sum to the pool
        for hosts in 1..7 {
            let c = ClusterSpec::new(5, 3).with_hosts(hosts);
            let maps: usize = (0..hosts).map(|h| c.map_slots_of(HostId(h as u32))).sum();
            assert_eq!(maps, 5);
        }
    }

    #[test]
    fn hosts_clamped_to_one() {
        assert_eq!(ClusterSpec::new(1, 1).with_hosts(0).hosts, 1);
        assert_eq!(ClusterSpec::new(1, 1).with_hosts(9).map_slots_of(HostId(20)), 0);
    }
}
