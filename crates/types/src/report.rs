//! Simulation output: per-job records, task timelines, and the
//! deadline-utility metric of §V-A.

use crate::ids::JobId;
use crate::time::{DurationMs, SimTime};
use serde::{impl_serde_struct, impl_serde_unit_enum};
use std::sync::Arc;

/// Which execution phase a timeline entry covers. Reduce tasks are split
//  into shuffle and reduce portions, exactly like Figures 1-2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimelinePhase {
    /// Map task execution.
    Map,
    /// Shuffle/sort portion of a reduce task.
    Shuffle,
    /// Reduce-function portion of a reduce task.
    Reduce,
}

impl_serde_unit_enum!(TimelinePhase { Map, Shuffle, Reduce });

impl TimelinePhase {
    /// Lowercase label used in CSV output.
    pub const fn as_str(self) -> &'static str {
        match self {
            TimelinePhase::Map => "map",
            TimelinePhase::Shuffle => "shuffle",
            TimelinePhase::Reduce => "reduce",
        }
    }
}

/// One horizontal bar in a Figure-1-style task/slot timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineEntry {
    /// Owning job.
    pub job: JobId,
    /// Phase drawn.
    pub phase: TimelinePhase,
    /// Slot the bar occupies (y-axis of the figure).
    pub slot: u32,
    /// Bar start.
    pub start: SimTime,
    /// Bar end.
    pub end: SimTime,
}

impl_serde_struct!(TimelineEntry { job, phase, slot, start, end });

/// Completion record for one simulated job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// The job.
    pub job: JobId,
    /// Application name, shared with the job's template (`Arc<str>`
    /// interning: emitting a result is a refcount bump, not a copy).
    pub name: Arc<str>,
    /// Submission time.
    pub arrival: SimTime,
    /// When the first map task was placed on a slot.
    pub first_map_start: Option<SimTime>,
    /// When the last map task finished (the `AllMapsFinished` event).
    pub maps_finished: Option<SimTime>,
    /// Completion time of the whole job.
    pub completion: SimTime,
    /// Deadline carried by the job spec, if any.
    pub deadline: Option<SimTime>,
    /// Number of map tasks executed.
    pub num_maps: usize,
    /// Number of reduce tasks executed.
    pub num_reduces: usize,
}

impl_serde_struct!(JobResult {
    job,
    name,
    arrival,
    first_map_start,
    maps_finished,
    completion,
    deadline,
    num_maps,
    num_reduces,
});

impl JobResult {
    /// Makespan of the job: completion − arrival.
    pub fn duration(&self) -> DurationMs {
        self.completion.since(self.arrival)
    }

    /// Amount by which the deadline was exceeded (0 if met or absent).
    pub fn deadline_overrun(&self) -> DurationMs {
        match self.deadline {
            Some(d) => self.completion.since(d),
            None => 0,
        }
    }

    /// The paper's relative-deadline-exceeded contribution:
    /// `(T_J − D_J) / D_J` for jobs past their deadline, else 0.
    ///
    /// The deadline is interpreted relative to the job's arrival (a deadline
    /// of "double the standalone runtime" is twice the runtime *after
    /// submission*, not since the epoch).
    pub fn relative_deadline_exceeded(&self) -> f64 {
        match self.deadline {
            Some(d) if self.completion > d => {
                let rel_deadline = d.since(self.arrival);
                if rel_deadline == 0 {
                    // degenerate deadline-at-arrival: count the full runtime
                    self.duration() as f64
                } else {
                    (self.completion.since(d)) as f64 / rel_deadline as f64
                }
            }
            _ => 0.0,
        }
    }

    /// True if the job completed by its deadline (or has none).
    pub fn met_deadline(&self) -> bool {
        match self.deadline {
            Some(d) => self.completion <= d,
            None => true,
        }
    }
}

/// Full output of one simulation run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimulationReport {
    /// Per-job completion records, indexed by job id.
    pub jobs: Vec<JobResult>,
    /// Virtual time at which the last event fired.
    pub makespan: SimTime,
    /// Total number of discrete events processed (for the >1M events/s
    /// throughput claim of §I).
    pub events_processed: u64,
    /// Task-level timeline; only populated when timeline recording was
    /// enabled (it is off by default — recording costs memory).
    pub timeline: Vec<TimelineEntry>,
}

impl_serde_struct!(SimulationReport { jobs, makespan, events_processed, timeline });

impl SimulationReport {
    /// Sum of relative deadline overruns across all jobs — the utility
    /// function minimized by a good deadline scheduler (§V-A).
    pub fn total_relative_deadline_exceeded(&self) -> f64 {
        self.jobs.iter().map(JobResult::relative_deadline_exceeded).sum()
    }

    /// Number of jobs that missed their deadline.
    pub fn missed_deadlines(&self) -> usize {
        self.jobs.iter().filter(|j| !j.met_deadline()).count()
    }

    /// Completion time of a given job.
    pub fn completion_of(&self, job: JobId) -> Option<SimTime> {
        self.jobs.iter().find(|r| r.job == job).map(|r| r.completion)
    }

    /// Mean job duration in milliseconds (0 for an empty report).
    pub fn mean_duration_ms(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.iter().map(|j| j.duration() as f64).sum::<f64>() / self.jobs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(arrival: u64, completion: u64, deadline: Option<u64>) -> JobResult {
        JobResult {
            job: JobId(0),
            name: "t".into(),
            arrival: SimTime::from_millis(arrival),
            first_map_start: None,
            maps_finished: None,
            completion: SimTime::from_millis(completion),
            deadline: deadline.map(SimTime::from_millis),
            num_maps: 1,
            num_reduces: 0,
        }
    }

    #[test]
    fn duration_and_overrun() {
        let r = result(1000, 5000, Some(4000));
        assert_eq!(r.duration(), 4000);
        assert_eq!(r.deadline_overrun(), 1000);
        assert!(!r.met_deadline());
    }

    #[test]
    fn relative_exceeded_is_relative_to_arrival() {
        // arrival 1000, deadline 4000 => relative deadline 3000;
        // completion 5500 => overrun 1500 => 0.5
        let r = result(1000, 5500, Some(4000));
        assert!((r.relative_deadline_exceeded() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn met_deadline_contributes_zero() {
        let r = result(0, 3000, Some(4000));
        assert_eq!(r.relative_deadline_exceeded(), 0.0);
        assert!(r.met_deadline());
        let r = result(0, 3000, None);
        assert_eq!(r.relative_deadline_exceeded(), 0.0);
    }

    #[test]
    fn report_aggregates() {
        let report = SimulationReport {
            jobs: vec![
                result(0, 2000, Some(1000)),    // overrun 1000/1000 = 1.0
                result(0, 500, Some(1000)),     // met
                result(1000, 4000, Some(2000)), // overrun 2000/1000 = 2.0
            ],
            makespan: SimTime::from_millis(4000),
            events_processed: 42,
            timeline: vec![],
        };
        assert!((report.total_relative_deadline_exceeded() - 3.0).abs() < 1e-12);
        assert_eq!(report.missed_deadlines(), 2);
        assert_eq!(report.completion_of(JobId(0)), Some(SimTime::from_millis(2000)));
        assert!((report.mean_duration_ms() - (2000.0 + 500.0 + 3000.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn phase_labels() {
        assert_eq!(TimelinePhase::Map.as_str(), "map");
        assert_eq!(TimelinePhase::Shuffle.as_str(), "shuffle");
        assert_eq!(TimelinePhase::Reduce.as_str(), "reduce");
    }
}
