//! Simulated time.
//!
//! All simulators in this workspace advance a virtual clock measured in
//! integer **milliseconds**. Integer time (instead of `f64` seconds) keeps
//! event ordering exact and runs bit-for-bit reproducible, which the
//! property-based tests rely on.

use serde::impl_serde_transparent;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A duration in simulated milliseconds.
pub type DurationMs = u64;

/// An instant on the simulated clock, in milliseconds since simulation start.
///
/// `SimTime` is a transparent newtype over `u64`; arithmetic with
/// [`DurationMs`] is provided via `+`/`-` operators and saturates on
/// subtraction (the simulated clock never goes negative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl_serde_transparent!(SimTime(u64));

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" sentinel for
    /// the engine's filler reduce tasks (§III-B of the paper).
    pub const INFINITY: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> DurationMs {
        self.0.saturating_sub(earlier.0)
    }

    /// True if this is the `INFINITY` sentinel.
    pub const fn is_infinite(self) -> bool {
        self.0 == u64::MAX
    }
}

impl Add<DurationMs> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: DurationMs) -> SimTime {
        SimTime(self.0.saturating_add(rhs))
    }
}

impl AddAssign<DurationMs> for SimTime {
    fn add_assign(&mut self, rhs: DurationMs) {
        self.0 = self.0.saturating_add(rhs);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = DurationMs;
    fn sub(self, rhs: SimTime) -> DurationMs {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "inf")
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

/// Converts a float number of seconds to a millisecond duration, rounding to
/// the nearest millisecond and clamping at zero.
pub fn secs_to_ms(secs: f64) -> DurationMs {
    if secs <= 0.0 {
        0
    } else {
        (secs * 1000.0).round() as u64
    }
}

/// Converts a millisecond duration to float seconds (reporting only).
pub fn ms_to_secs(ms: DurationMs) -> f64 {
    ms as f64 / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::from_secs(3);
        assert_eq!(t.as_millis(), 3000);
        assert_eq!(t.as_secs_f64(), 3.0);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(100);
        assert_eq!((t + 50).as_millis(), 150);
        assert_eq!(SimTime::from_millis(150) - t, 50);
        // saturating subtraction: clock never negative
        assert_eq!(t - SimTime::from_millis(500), 0);
        assert_eq!(t.since(SimTime::from_millis(500)), 0);
        assert_eq!(SimTime::from_millis(500).since(t), 400);
    }

    #[test]
    fn infinity_sentinel() {
        assert!(SimTime::INFINITY.is_infinite());
        assert!(!SimTime::ZERO.is_infinite());
        // adding to infinity saturates rather than wrapping
        assert_eq!(SimTime::INFINITY + 10, SimTime::INFINITY);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::from_millis(1));
        assert!(SimTime::from_millis(1) < SimTime::INFINITY);
    }

    #[test]
    fn float_conversions() {
        assert_eq!(secs_to_ms(1.5), 1500);
        assert_eq!(secs_to_ms(-2.0), 0);
        assert_eq!(secs_to_ms(0.0004), 0);
        assert_eq!(secs_to_ms(0.0006), 1);
        assert_eq!(ms_to_secs(2500), 2.5);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis(1234).to_string(), "1.234s");
        assert_eq!(SimTime::INFINITY.to_string(), "inf");
    }
}
