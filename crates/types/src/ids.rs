//! Identifiers for jobs, tasks and slots.

use serde::{impl_serde_struct, impl_serde_transparent, impl_serde_unit_enum};
use std::fmt;

/// A job's index within a workload trace.
///
/// Job ids are dense (0..n) within one [`crate::WorkloadTrace`]; schedulers
/// receive them through the narrow `choose_next_*` interface described in
/// §III-B of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct JobId(pub u32);

impl_serde_transparent!(JobId(u32));

impl JobId {
    /// The raw index, usable for `Vec` lookup.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job_{:04}", self.0)
    }
}

/// The two stages of a MapReduce job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TaskKind {
    /// A map task.
    Map,
    /// A reduce task (shuffle + sort + reduce phases; see §II of the paper).
    Reduce,
}

impl_serde_unit_enum!(TaskKind { Map, Reduce });

impl TaskKind {
    /// Lowercase name used in the job-history log format.
    pub const fn as_str(self) -> &'static str {
        match self {
            TaskKind::Map => "map",
            TaskKind::Reduce => "reduce",
        }
    }
}

impl fmt::Display for TaskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A task identifier: `(job, kind, index-within-stage)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId {
    /// Owning job.
    pub job: JobId,
    /// Map or reduce.
    pub kind: TaskKind,
    /// Dense index within the job's map (or reduce) stage.
    pub index: u32,
}

impl_serde_struct!(TaskId { job, kind, index });

impl TaskId {
    /// Convenience constructor for a map task id.
    pub const fn map(job: JobId, index: u32) -> Self {
        TaskId { job, kind: TaskKind::Map, index }
    }

    /// Convenience constructor for a reduce task id.
    pub const fn reduce(job: JobId, index: u32) -> Self {
        TaskId { job, kind: TaskKind::Reduce, index }
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}_{}_{:05}", self.job, self.kind, self.index)
    }
}

/// A worker host in the simulated cluster.
///
/// Slots are striped over hosts by [`crate::ClusterSpec`]; a host failure
/// permanently removes every slot the host carries and kills the task
/// attempts running on them (plus, Hadoop-style, completed map outputs
/// stored there).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct HostId(pub u32);

impl_serde_transparent!(HostId(u32));

impl HostId {
    /// The raw index, usable for `Vec` lookup.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host_{}", self.0)
    }
}

/// A slot index within the simulated cluster (map slots and reduce slots are
/// numbered independently).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SlotId(pub u32);

impl_serde_transparent!(SlotId(u32));

impl SlotId {
    /// The raw index, usable for `Vec` lookup.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot_{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(JobId(7).to_string(), "job_0007");
        assert_eq!(TaskId::map(JobId(1), 3).to_string(), "job_0001_map_00003");
        assert_eq!(TaskId::reduce(JobId(2), 12).to_string(), "job_0002_reduce_00012");
        assert_eq!(SlotId(5).to_string(), "slot_5");
        assert_eq!(HostId(3).to_string(), "host_3");
        assert_eq!(HostId(3).index(), 3);
    }

    #[test]
    fn task_id_ordering_is_job_then_kind_then_index() {
        let a = TaskId::map(JobId(0), 5);
        let b = TaskId::reduce(JobId(0), 0);
        let c = TaskId::map(JobId(1), 0);
        assert!(a < b); // Map < Reduce within a job
        assert!(b < c); // job dominates
    }

    #[test]
    fn indices() {
        assert_eq!(JobId(9).index(), 9);
        assert_eq!(SlotId(4).index(), 4);
    }

    #[test]
    fn kind_names() {
        assert_eq!(TaskKind::Map.as_str(), "map");
        assert_eq!(TaskKind::Reduce.as_str(), "reduce");
    }
}
