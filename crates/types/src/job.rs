//! Job templates and job specifications.
//!
//! A [`JobTemplate`] is the paper's replayable *job profile* (§III-A): the
//! number of map/reduce tasks plus the recorded durations of every map task,
//! the non-overlapping part of the first-wave shuffle, the typical shuffle,
//! and the reduce phase. A [`JobSpec`] pairs a template with an arrival time
//! and an optional deadline, forming one entry of a workload trace.

use crate::time::{DurationMs, SimTime};
use serde::impl_serde_struct;
use std::fmt;
use std::sync::Arc;

/// Errors raised when constructing a malformed [`JobTemplate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateError {
    /// A job must have at least one map task.
    NoMapTasks,
    /// `map_durations.len()` must equal `num_maps` (same for reduces).
    LengthMismatch {
        /// Which array is inconsistent.
        field: &'static str,
        /// Expected number of entries.
        expected: usize,
        /// Observed number of entries.
        actual: usize,
    },
    /// Jobs with reduce tasks need at least one shuffle sample of each kind.
    MissingShuffleSamples,
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::NoMapTasks => write!(f, "job template has no map tasks"),
            TemplateError::LengthMismatch { field, expected, actual } => {
                write!(f, "{field}: expected {expected} entries, got {actual}")
            }
            TemplateError::MissingShuffleSamples => {
                write!(f, "job with reduce tasks needs first- and typical-shuffle samples")
            }
        }
    }
}

impl std::error::Error for TemplateError {}

/// Average/maximum summary of one execution phase, used by the ARIA bounds
/// model (`simmr-model`) to predict completion times.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseStats {
    /// Mean task duration in milliseconds.
    pub avg: f64,
    /// Maximum task duration in milliseconds.
    pub max: DurationMs,
    /// Number of samples the summary was computed over.
    pub count: usize,
}

impl PhaseStats {
    /// Summarises a slice of durations; all-zero for an empty slice.
    pub fn from_durations(durations: &[DurationMs]) -> Self {
        if durations.is_empty() {
            return PhaseStats::default();
        }
        let sum: u128 = durations.iter().map(|&d| d as u128).sum();
        PhaseStats {
            avg: sum as f64 / durations.len() as f64,
            max: durations.iter().copied().max().unwrap_or(0),
            count: durations.len(),
        }
    }
}

impl_serde_struct!(PhaseStats { avg, max, count });

/// The paper's *job template*: everything needed to replay one job.
///
/// Durations are in simulated milliseconds. `first_shuffle_durations` holds
/// the **non-overlapping** portion of the first-wave shuffle (the part that
/// extends past the end of the map stage — see §II/§III-A), and
/// `typical_shuffle_durations` holds full shuffle durations for later waves.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTemplate {
    /// Human-readable application name (e.g. `"WordCount-32GB"`).
    ///
    /// Interned as `Arc<str>` so that cloning a template — and stamping
    /// the name onto every per-job result the engine emits — is a
    /// reference-count bump rather than a heap copy.
    pub name: Arc<str>,
    /// Number of map tasks `N_M^J`.
    pub num_maps: usize,
    /// Number of reduce tasks `N_R^J`.
    pub num_reduces: usize,
    /// Duration of each map task (`M^J`), length `num_maps`.
    pub map_durations: Vec<DurationMs>,
    /// Non-overlapping first-wave shuffle durations (`Sh_1^J`).
    pub first_shuffle_durations: Vec<DurationMs>,
    /// Typical (later-wave) shuffle durations (`Sh_typ^J`).
    pub typical_shuffle_durations: Vec<DurationMs>,
    /// Reduce-phase durations (`R^J`), length `num_reduces`.
    pub reduce_durations: Vec<DurationMs>,
}

impl_serde_struct!(JobTemplate {
    name,
    num_maps,
    num_reduces,
    map_durations,
    first_shuffle_durations,
    typical_shuffle_durations,
    reduce_durations,
});

impl JobTemplate {
    /// Validates and builds a template.
    ///
    /// Invariants enforced:
    /// * at least one map task, with exactly `num_maps` recorded durations;
    /// * exactly `num_reduces` reduce durations;
    /// * if `num_reduces > 0`, at least one first-shuffle and one
    ///   typical-shuffle sample (the engine indexes them cyclically).
    pub fn new(
        name: impl Into<Arc<str>>,
        map_durations: Vec<DurationMs>,
        first_shuffle_durations: Vec<DurationMs>,
        typical_shuffle_durations: Vec<DurationMs>,
        reduce_durations: Vec<DurationMs>,
    ) -> Result<Self, TemplateError> {
        if map_durations.is_empty() {
            return Err(TemplateError::NoMapTasks);
        }
        if !reduce_durations.is_empty()
            && (first_shuffle_durations.is_empty() || typical_shuffle_durations.is_empty())
        {
            return Err(TemplateError::MissingShuffleSamples);
        }
        Ok(JobTemplate {
            name: name.into(),
            num_maps: map_durations.len(),
            num_reduces: reduce_durations.len(),
            map_durations,
            first_shuffle_durations,
            typical_shuffle_durations,
            reduce_durations,
        })
    }

    /// Re-checks the structural invariants (used after deserialization).
    pub fn validate(&self) -> Result<(), TemplateError> {
        if self.num_maps == 0 {
            return Err(TemplateError::NoMapTasks);
        }
        if self.map_durations.len() != self.num_maps {
            return Err(TemplateError::LengthMismatch {
                field: "map_durations",
                expected: self.num_maps,
                actual: self.map_durations.len(),
            });
        }
        if self.reduce_durations.len() != self.num_reduces {
            return Err(TemplateError::LengthMismatch {
                field: "reduce_durations",
                expected: self.num_reduces,
                actual: self.reduce_durations.len(),
            });
        }
        if self.num_reduces > 0
            && (self.first_shuffle_durations.is_empty()
                || self.typical_shuffle_durations.is_empty())
        {
            return Err(TemplateError::MissingShuffleSamples);
        }
        Ok(())
    }

    /// Map-task duration for task `index` (replay order).
    pub fn map_duration(&self, index: usize) -> DurationMs {
        self.map_durations[index % self.map_durations.len()]
    }

    /// Reduce-phase duration for reduce task `index`.
    pub fn reduce_duration(&self, index: usize) -> DurationMs {
        self.reduce_durations[index % self.reduce_durations.len()]
    }

    /// Non-overlapping first-wave shuffle duration for reduce task `index`.
    pub fn first_shuffle_duration(&self, index: usize) -> DurationMs {
        if self.first_shuffle_durations.is_empty() {
            0
        } else {
            self.first_shuffle_durations[index % self.first_shuffle_durations.len()]
        }
    }

    /// Typical shuffle duration for reduce task `index`.
    pub fn typical_shuffle_duration(&self, index: usize) -> DurationMs {
        if self.typical_shuffle_durations.is_empty() {
            0
        } else {
            self.typical_shuffle_durations[index % self.typical_shuffle_durations.len()]
        }
    }

    /// Summary statistics of the map phase.
    pub fn map_stats(&self) -> PhaseStats {
        PhaseStats::from_durations(&self.map_durations)
    }

    /// Summary statistics of the typical shuffle phase.
    pub fn shuffle_stats(&self) -> PhaseStats {
        PhaseStats::from_durations(&self.typical_shuffle_durations)
    }

    /// Summary statistics of the first (non-overlapping) shuffle phase.
    pub fn first_shuffle_stats(&self) -> PhaseStats {
        PhaseStats::from_durations(&self.first_shuffle_durations)
    }

    /// Summary statistics of the reduce phase.
    pub fn reduce_stats(&self) -> PhaseStats {
        PhaseStats::from_durations(&self.reduce_durations)
    }

    /// Total serial work in the job (sum of all task durations), useful as a
    /// normalization constant in reports.
    pub fn total_work_ms(&self) -> u128 {
        self.map_durations.iter().map(|&d| d as u128).sum::<u128>()
            + self.typical_shuffle_durations.iter().map(|&d| d as u128).sum::<u128>()
            + self.reduce_durations.iter().map(|&d| d as u128).sum::<u128>()
    }
}

/// One job of a workload trace: a template plus arrival time and deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The replayable profile.
    pub template: JobTemplate,
    /// Submission time.
    pub arrival: SimTime,
    /// Optional completion-time goal, as an *absolute* instant.
    ///
    /// The deadline-driven schedulers (MinEDF/MaxEDF) order jobs by this
    /// field; `None` means "no deadline" and sorts last.
    pub deadline: Option<SimTime>,
}

impl_serde_struct!(JobSpec { template, arrival, deadline });

impl JobSpec {
    /// A job arriving at `arrival` with no deadline.
    pub fn new(template: JobTemplate, arrival: SimTime) -> Self {
        JobSpec { template, arrival, deadline: None }
    }

    /// Attaches an absolute deadline.
    pub fn with_deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Deadline as a relative duration from arrival (None if no deadline).
    pub fn relative_deadline(&self) -> Option<DurationMs> {
        self.deadline.map(|d| d.since(self.arrival))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_template() -> JobTemplate {
        JobTemplate::new("test", vec![10, 20, 30], vec![5], vec![7, 9], vec![4, 6]).unwrap()
    }

    #[test]
    fn constructor_fills_counts() {
        let t = simple_template();
        assert_eq!(t.num_maps, 3);
        assert_eq!(t.num_reduces, 2);
        t.validate().unwrap();
    }

    #[test]
    fn rejects_empty_maps() {
        let err = JobTemplate::new("x", vec![], vec![], vec![], vec![]).unwrap_err();
        assert_eq!(err, TemplateError::NoMapTasks);
    }

    #[test]
    fn rejects_reduces_without_shuffle_samples() {
        let err = JobTemplate::new("x", vec![10], vec![], vec![], vec![5]).unwrap_err();
        assert_eq!(err, TemplateError::MissingShuffleSamples);
    }

    #[test]
    fn map_only_job_is_fine() {
        let t = JobTemplate::new("maponly", vec![10, 10], vec![], vec![], vec![]).unwrap();
        assert_eq!(t.num_reduces, 0);
        assert_eq!(t.first_shuffle_duration(0), 0);
        assert_eq!(t.typical_shuffle_duration(3), 0);
    }

    #[test]
    fn cyclic_indexing() {
        let t = simple_template();
        assert_eq!(t.map_duration(0), 10);
        assert_eq!(t.map_duration(4), 20); // 4 % 3 == 1
        assert_eq!(t.first_shuffle_duration(5), 5);
        assert_eq!(t.typical_shuffle_duration(3), 9); // 3 % 2 == 1
    }

    #[test]
    fn phase_stats() {
        let s = PhaseStats::from_durations(&[10, 20, 30]);
        assert_eq!(s.avg, 20.0);
        assert_eq!(s.max, 30);
        assert_eq!(s.count, 3);
        let empty = PhaseStats::from_durations(&[]);
        assert_eq!(empty.avg, 0.0);
        assert_eq!(empty.count, 0);
    }

    #[test]
    fn total_work() {
        let t = simple_template();
        // maps 60 + typical shuffles 16 + reduces 10
        assert_eq!(t.total_work_ms(), 86);
    }

    #[test]
    fn validate_detects_tampering() {
        let mut t = simple_template();
        t.num_maps = 5;
        assert!(matches!(
            t.validate(),
            Err(TemplateError::LengthMismatch { field: "map_durations", .. })
        ));
    }

    #[test]
    fn job_spec_deadlines() {
        let spec = JobSpec::new(simple_template(), SimTime::from_secs(10));
        assert_eq!(spec.relative_deadline(), None);
        let spec = spec.with_deadline(SimTime::from_secs(25));
        assert_eq!(spec.relative_deadline(), Some(15_000));
    }

    #[test]
    fn serde_round_trip() {
        let spec = JobSpec::new(simple_template(), SimTime::from_secs(1))
            .with_deadline(SimTime::from_secs(2));
        let json = serde_json::to_string(&spec).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
