//! # simmr-types
//!
//! Common domain types for SimMR-RS, a Rust reproduction of the SimMR
//! MapReduce simulator ("Play It Again, SimMR!", IEEE CLUSTER 2011).
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`SimTime`] / [`DurationMs`] — simulated wall-clock time, in integer
//!   milliseconds for fully deterministic event ordering;
//! * [`JobId`], [`TaskId`], [`TaskKind`], [`HostId`] — identifiers for
//!   jobs, tasks and worker hosts;
//! * [`ClusterSpec`] — the named cluster shape (map/reduce slot pools plus
//!   the host count the slots are striped over), shared by the engine
//!   configuration and the scheduler interface;
//! * [`JobTemplate`] — the paper's *job template* (§III-A): the compact
//!   per-job profile `(N_M, N_R, MapDurations, FirstShuffleDurations,
//!   TypicalShuffleDurations, ReduceDurations)` that makes a trace
//!   replayable;
//! * [`JobSpec`] / [`WorkloadTrace`] — a replayable workload: job templates
//!   plus arrival times and (optional) deadlines;
//! * [`JobResult`] / [`SimulationReport`] — the output side: per-job
//!   completion records, task-level timelines for plotting, and the
//!   deadline-utility metric from §V-A of the paper.

pub mod cluster;
pub mod history;
pub mod ids;
pub mod job;
pub mod report;
pub mod time;
pub mod trace;

pub use cluster::ClusterSpec;
pub use history::{
    parse_history, write_history, HistoryLine, HistoryParseError, JobHistoryRecord,
    TaskHistoryRecord,
};
pub use ids::{HostId, JobId, SlotId, TaskId, TaskKind};
pub use job::{JobSpec, JobTemplate, PhaseStats, TemplateError};
pub use report::{JobResult, SimulationReport, TimelineEntry, TimelinePhase};
pub use time::{ms_to_secs, secs_to_ms, DurationMs, SimTime};
pub use trace::{TraceMeta, WorkloadTrace};
