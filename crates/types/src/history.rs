//! Job-history log format.
//!
//! The paper's MRProfiler *"extracts the job performance metrics by
//! processing the counters and logs stored at the JobTracker at the end of
//! each job"* (§III-A). Our testbed simulator plays the JobTracker's role
//! and emits an equivalent line-oriented history log; the MRProfiler in
//! `simmr-trace` parses it back into replayable job templates. The format
//! is deliberately simple and greppable:
//!
//! ```text
//! JOB id=3 name=WordCount-40GB submit=0 launch=600 finish=251000 maps=640 reduces=256
//! TASK job=3 kind=map idx=17 start=600 end=19000 node=12
//! TASK job=3 kind=reduce idx=4 start=20000 shuffle_end=230000 sort_end=230000 end=251000 node=7
//! ```
//!
//! All times are absolute simulated milliseconds. Reduce tasks carry the
//! ends of their shuffle and sort phases; `sort_end == shuffle_end` when
//! the sort cost is folded into the shuffle (the paper treats shuffle+sort
//! as a single phase).

use crate::ids::TaskKind;
use crate::time::SimTime;
use serde::{impl_serde_struct, DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::str::FromStr;

/// Job-level history record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobHistoryRecord {
    /// Job sequence number within the log.
    pub id: u32,
    /// Application/job name (whitespace is replaced by `_` on write).
    pub name: String,
    /// Submission time.
    pub submit: SimTime,
    /// First task launch time.
    pub launch: SimTime,
    /// Completion time.
    pub finish: SimTime,
    /// Number of map tasks.
    pub maps: usize,
    /// Number of reduce tasks.
    pub reduces: usize,
}

impl_serde_struct!(JobHistoryRecord { id, name, submit, launch, finish, maps, reduces });

/// Task-attempt history record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskHistoryRecord {
    /// Owning job's sequence number.
    pub job: u32,
    /// Map or reduce.
    pub kind: TaskKind,
    /// Task index within its stage.
    pub idx: u32,
    /// Start of execution (shuffle start for reduces).
    pub start: SimTime,
    /// End of the shuffle phase (reduce tasks only).
    pub shuffle_end: Option<SimTime>,
    /// End of the sort phase (reduce tasks only).
    pub sort_end: Option<SimTime>,
    /// Task completion.
    pub end: SimTime,
    /// Worker node that executed the attempt.
    pub node: u32,
}

impl_serde_struct!(TaskHistoryRecord { job, kind, idx, start, shuffle_end, sort_end, end, node });

/// One parsed line of a history log.
#[derive(Debug, Clone, PartialEq)]
pub enum HistoryLine {
    /// A `JOB` record.
    Job(JobHistoryRecord),
    /// A `TASK` record.
    Task(TaskHistoryRecord),
}

// Externally tagged representation, matching serde's enum default:
// `{"Job": {...}}` / `{"Task": {...}}`.
impl Serialize for HistoryLine {
    fn to_value(&self) -> Value {
        let (tag, inner) = match self {
            HistoryLine::Job(j) => ("Job", j.to_value()),
            HistoryLine::Task(t) => ("Task", t.to_value()),
        };
        Value::Object(vec![(tag.to_owned(), inner)])
    }
}

impl Deserialize for HistoryLine {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) if pairs.len() == 1 => match pairs[0].0.as_str() {
                "Job" => JobHistoryRecord::from_value(&pairs[0].1).map(HistoryLine::Job),
                "Task" => TaskHistoryRecord::from_value(&pairs[0].1).map(HistoryLine::Task),
                other => Err(DeError::new(format!("unknown HistoryLine variant `{other}`"))),
            },
            _ => Err(DeError::new("expected single-key object for HistoryLine")),
        }
    }
}

/// Errors raised while parsing a history log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for HistoryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "history log line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for HistoryParseError {}

impl fmt::Display for HistoryLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryLine::Job(j) => write!(
                f,
                "JOB id={} name={} submit={} launch={} finish={} maps={} reduces={}",
                j.id,
                j.name.replace(char::is_whitespace, "_"),
                j.submit.as_millis(),
                j.launch.as_millis(),
                j.finish.as_millis(),
                j.maps,
                j.reduces
            ),
            HistoryLine::Task(t) => {
                write!(
                    f,
                    "TASK job={} kind={} idx={} start={}",
                    t.job,
                    t.kind.as_str(),
                    t.idx,
                    t.start.as_millis()
                )?;
                if let Some(se) = t.shuffle_end {
                    write!(f, " shuffle_end={}", se.as_millis())?;
                }
                if let Some(se) = t.sort_end {
                    write!(f, " sort_end={}", se.as_millis())?;
                }
                write!(f, " end={} node={}", t.end.as_millis(), t.node)
            }
        }
    }
}

/// Finds the value of a `key=value` token on the line.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split_ascii_whitespace().find_map(|tok| {
        let (k, v) = tok.split_once('=')?;
        (k == key).then_some(v)
    })
}

impl FromStr for HistoryLine {
    type Err = String;

    fn from_str(line: &str) -> Result<Self, Self::Err> {
        let get = |key: &str| field(line, key);
        let num = |key: &str| -> Result<u64, String> {
            get(key)
                .ok_or_else(|| format!("missing field `{key}`"))?
                .parse::<u64>()
                .map_err(|e| format!("field `{key}`: {e}"))
        };
        if line.starts_with("JOB ") {
            Ok(HistoryLine::Job(JobHistoryRecord {
                id: num("id")? as u32,
                name: get("name").ok_or("missing field `name`")?.to_string(),
                submit: SimTime::from_millis(num("submit")?),
                launch: SimTime::from_millis(num("launch")?),
                finish: SimTime::from_millis(num("finish")?),
                maps: num("maps")? as usize,
                reduces: num("reduces")? as usize,
            }))
        } else if line.starts_with("TASK ") {
            let kind = match get("kind") {
                Some("map") => TaskKind::Map,
                Some("reduce") => TaskKind::Reduce,
                other => return Err(format!("bad task kind {other:?}")),
            };
            Ok(HistoryLine::Task(TaskHistoryRecord {
                job: num("job")? as u32,
                kind,
                idx: num("idx")? as u32,
                start: SimTime::from_millis(num("start")?),
                shuffle_end: get("shuffle_end")
                    .map(|v| v.parse::<u64>().map(SimTime::from_millis))
                    .transpose()
                    .map_err(|e| format!("field `shuffle_end`: {e}"))?,
                sort_end: get("sort_end")
                    .map(|v| v.parse::<u64>().map(SimTime::from_millis))
                    .transpose()
                    .map_err(|e| format!("field `sort_end`: {e}"))?,
                end: SimTime::from_millis(num("end")?),
                node: num("node")? as u32,
            }))
        } else {
            Err(format!("unrecognized record type in {line:?}"))
        }
    }
}

/// Serializes history lines to log text.
pub fn write_history(lines: &[HistoryLine]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for line in lines {
        writeln!(out, "{line}").expect("writing to a String cannot fail");
    }
    out
}

/// Parses a full history log, skipping blank and `#`-comment lines.
pub fn parse_history(text: &str) -> Result<Vec<HistoryLine>, HistoryParseError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line.parse::<HistoryLine>() {
            Ok(parsed) => out.push(parsed),
            Err(message) => return Err(HistoryParseError { line: i + 1, message }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job_record() -> HistoryLine {
        HistoryLine::Job(JobHistoryRecord {
            id: 3,
            name: "WordCount-40GB".into(),
            submit: SimTime::from_millis(0),
            launch: SimTime::from_millis(600),
            finish: SimTime::from_millis(251_000),
            maps: 640,
            reduces: 256,
        })
    }

    fn reduce_record() -> HistoryLine {
        HistoryLine::Task(TaskHistoryRecord {
            job: 3,
            kind: TaskKind::Reduce,
            idx: 4,
            start: SimTime::from_millis(20_000),
            shuffle_end: Some(SimTime::from_millis(230_000)),
            sort_end: Some(SimTime::from_millis(230_000)),
            end: SimTime::from_millis(251_000),
            node: 7,
        })
    }

    #[test]
    fn round_trip_job() {
        let line = job_record().to_string();
        assert_eq!(line.parse::<HistoryLine>().unwrap(), job_record());
    }

    #[test]
    fn round_trip_reduce_task() {
        let line = reduce_record().to_string();
        assert_eq!(line.parse::<HistoryLine>().unwrap(), reduce_record());
    }

    #[test]
    fn round_trip_map_task() {
        let rec = HistoryLine::Task(TaskHistoryRecord {
            job: 0,
            kind: TaskKind::Map,
            idx: 17,
            start: SimTime::from_millis(600),
            shuffle_end: None,
            sort_end: None,
            end: SimTime::from_millis(19_000),
            node: 12,
        });
        let line = rec.to_string();
        assert!(!line.contains("shuffle_end"));
        assert_eq!(line.parse::<HistoryLine>().unwrap(), rec);
    }

    #[test]
    fn whitespace_in_names_sanitized() {
        let rec = HistoryLine::Job(JobHistoryRecord {
            name: "my job".into(),
            ..match job_record() {
                HistoryLine::Job(j) => j,
                _ => unreachable!(),
            }
        });
        let line = rec.to_string();
        let parsed = line.parse::<HistoryLine>().unwrap();
        match parsed {
            HistoryLine::Job(j) => assert_eq!(j.name, "my_job"),
            _ => panic!(),
        }
    }

    #[test]
    fn full_log_round_trip_with_comments() {
        let text = format!("# generated by test\n\n{}\n{}\n", job_record(), reduce_record());
        let parsed = parse_history(&text).unwrap();
        assert_eq!(parsed, vec![job_record(), reduce_record()]);
        let rewritten = write_history(&parsed);
        assert_eq!(parse_history(&rewritten).unwrap(), parsed);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_history("JOB id=1\nGARBAGE\n").unwrap_err();
        assert_eq!(err.line, 1); // missing fields already on line 1
        let err = parse_history("# ok\nGARBAGE\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn bad_kind_rejected() {
        let err = "TASK job=0 kind=combine idx=0 start=0 end=1 node=0"
            .parse::<HistoryLine>()
            .unwrap_err();
        assert!(err.contains("bad task kind"));
    }

    #[test]
    fn bad_number_rejected() {
        let err =
            "TASK job=0 kind=map idx=zz start=0 end=1 node=0".parse::<HistoryLine>().unwrap_err();
        assert!(err.contains("idx"));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_task() -> impl Strategy<Value = TaskHistoryRecord> {
        (
            0u32..50,
            prop_oneof![Just(TaskKind::Map), Just(TaskKind::Reduce)],
            0u32..10_000,
            0u64..1_000_000,
            0u64..1_000_000,
            0u32..256,
            proptest::bool::ANY,
        )
            .prop_map(|(job, kind, idx, start, dur, node, phases)| {
                let start = SimTime::from_millis(start);
                let end = start + dur;
                let (shuffle_end, sort_end) = if kind == TaskKind::Reduce && phases {
                    let se = start + dur / 2;
                    (Some(se), Some(se + dur / 4))
                } else {
                    (None, None)
                };
                TaskHistoryRecord { job, kind, idx, start, shuffle_end, sort_end, end, node }
            })
    }

    proptest! {
        /// Any structurally sane log round-trips through text exactly.
        #[test]
        fn log_text_round_trip(
            tasks in proptest::collection::vec(arb_task(), 0..40),
            jobs in proptest::collection::vec((0u32..50, 0u64..1_000_000), 0..10),
        ) {
            let mut lines: Vec<HistoryLine> = jobs
                .into_iter()
                .map(|(id, submit)| HistoryLine::Job(JobHistoryRecord {
                    id,
                    name: format!("job-{id}"),
                    submit: SimTime::from_millis(submit),
                    launch: SimTime::from_millis(submit + 1),
                    finish: SimTime::from_millis(submit + 100),
                    maps: id as usize,
                    reduces: (id / 2) as usize,
                }))
                .collect();
            lines.extend(tasks.into_iter().map(HistoryLine::Task));
            let text = write_history(&lines);
            let parsed = parse_history(&text).unwrap();
            prop_assert_eq!(parsed, lines);
        }

        /// The parser never panics on arbitrary input.
        #[test]
        fn parser_total_on_garbage(input in "\\PC{0,200}") {
            let _ = parse_history(&input);
            let _ = input.parse::<HistoryLine>();
        }
    }
}
