//! Replayable workload traces.

use crate::job::JobSpec;
use crate::time::SimTime;
use serde::impl_serde_struct;

/// Metadata describing where a trace came from.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceMeta {
    /// Free-form description (cluster name, generator parameters, ...).
    pub description: String,
    /// Generator/profiler that produced the trace (`"mrprofiler"`,
    /// `"synthetic-facebook"`, ...).
    pub source: String,
    /// RNG seed for synthetic traces, when applicable.
    pub seed: Option<u64>,
}

impl_serde_struct!(TraceMeta { description, source, seed });

/// A replayable MapReduce workload: an ordered set of job specs.
///
/// This is the unit the Simulator Engine consumes and the Trace Generator
/// produces (both MRProfiler-extracted and synthetic traces use this type).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkloadTrace {
    /// Trace provenance.
    pub meta: TraceMeta,
    /// The jobs, in arbitrary order (the engine sorts arrivals internally).
    pub jobs: Vec<JobSpec>,
}

impl_serde_struct!(WorkloadTrace { meta, jobs });

impl WorkloadTrace {
    /// An empty trace with the given description.
    pub fn new(description: impl Into<String>, source: impl Into<String>) -> Self {
        WorkloadTrace {
            meta: TraceMeta { description: description.into(), source: source.into(), seed: None },
            jobs: Vec::new(),
        }
    }

    /// Appends a job.
    pub fn push(&mut self, job: JobSpec) {
        self.jobs.push(job);
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the trace holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Earliest arrival across all jobs (None for an empty trace).
    pub fn first_arrival(&self) -> Option<SimTime> {
        self.jobs.iter().map(|j| j.arrival).min()
    }

    /// Latest arrival across all jobs (None for an empty trace).
    pub fn last_arrival(&self) -> Option<SimTime> {
        self.jobs.iter().map(|j| j.arrival).max()
    }

    /// Total number of tasks (map + reduce) across all jobs.
    pub fn total_tasks(&self) -> usize {
        self.jobs.iter().map(|j| j.template.num_maps + j.template.num_reduces).sum()
    }

    /// Sum of serial work across all jobs, in milliseconds. This is the
    /// "about a week if executed serially" figure from §IV-E of the paper.
    pub fn total_serial_work_ms(&self) -> u128 {
        self.jobs.iter().map(|j| j.template.total_work_ms()).sum()
    }

    /// Returns a copy limited to the first `n` jobs in arrival order
    /// (used by the Figure 6 performance sweep).
    ///
    /// Only the selected prefix is cloned: the jobs are ranked through an
    /// index of `(arrival, original position)` keys — selection is O(n),
    /// ordering the survivors O(n log n) in the *prefix* length — so taking
    /// a small head of a million-job trace never copies the million jobs.
    /// Ties on arrival keep the original trace order.
    pub fn prefix_by_arrival(&self, n: usize) -> WorkloadTrace {
        let mut keys: Vec<(SimTime, usize)> =
            self.jobs.iter().enumerate().map(|(i, j)| (j.arrival, i)).collect();
        if n < keys.len() {
            keys.select_nth_unstable(n);
            keys.truncate(n);
        }
        keys.sort_unstable();
        let jobs = keys.into_iter().map(|(_, i)| self.jobs[i].clone()).collect();
        WorkloadTrace { meta: self.meta.clone(), jobs }
    }

    /// Validates every job template in the trace.
    pub fn validate(&self) -> Result<(), crate::job::TemplateError> {
        for job in &self.jobs {
            job.template.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobTemplate;

    fn job(arrival_s: u64) -> JobSpec {
        JobSpec::new(
            JobTemplate::new("t", vec![100, 200], vec![10], vec![20], vec![30]).unwrap(),
            SimTime::from_secs(arrival_s),
        )
    }

    #[test]
    fn push_and_len() {
        let mut tr = WorkloadTrace::new("unit", "test");
        assert!(tr.is_empty());
        tr.push(job(5));
        tr.push(job(1));
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.first_arrival(), Some(SimTime::from_secs(1)));
        assert_eq!(tr.last_arrival(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn totals() {
        let mut tr = WorkloadTrace::new("unit", "test");
        tr.push(job(0));
        tr.push(job(1));
        assert_eq!(tr.total_tasks(), 6); // (2 maps + 1 reduce) * 2
        assert_eq!(tr.total_serial_work_ms(), 2 * (100 + 200 + 20 + 30));
    }

    #[test]
    fn prefix_sorts_by_arrival() {
        let mut tr = WorkloadTrace::new("unit", "test");
        tr.push(job(9));
        tr.push(job(2));
        tr.push(job(4));
        let p = tr.prefix_by_arrival(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.jobs[0].arrival, SimTime::from_secs(2));
        assert_eq!(p.jobs[1].arrival, SimTime::from_secs(4));
    }

    #[test]
    fn prefix_ties_keep_original_order() {
        // four jobs sharing one arrival, distinguished by map count
        let mut tr = WorkloadTrace::new("unit", "test");
        for maps in [1usize, 2, 3, 4] {
            tr.push(JobSpec::new(
                JobTemplate::new("t", vec![100; maps], vec![], vec![], vec![]).unwrap(),
                SimTime::from_secs(7),
            ));
        }
        tr.push(job(1)); // earlier arrival, appended last
        let p = tr.prefix_by_arrival(3);
        assert_eq!(p.jobs[0].arrival, SimTime::from_secs(1));
        // ties broken by original position: maps=1 then maps=2
        assert_eq!(p.jobs[1].template.num_maps, 1);
        assert_eq!(p.jobs[2].template.num_maps, 2);
        // n >= len returns the whole trace, sorted
        assert_eq!(tr.prefix_by_arrival(99).len(), 5);
        assert_eq!(tr.prefix_by_arrival(99).jobs[0].arrival, SimTime::from_secs(1));
    }

    #[test]
    fn empty_trace_edge_cases() {
        let tr = WorkloadTrace::default();
        assert_eq!(tr.first_arrival(), None);
        assert_eq!(tr.total_tasks(), 0);
        assert!(tr.validate().is_ok());
        assert!(tr.prefix_by_arrival(5).is_empty());
    }
}
