//! Minimal slot allocation for a deadline (the MinEDF model, §V-A).
//!
//! Inverting Equation 1 at a deadline `D` gives the hyperbola
//! `a/S_M + b/S_R = D − c` (with `a = A·N_M`, `b = B·N_R`); every integral
//! point on it meets the deadline. Lagrange multipliers minimizing
//! `S_M + S_R` subject to the constraint give
//!
//! ```text
//! S_M = (a + sqrt(a·b)) / (D − c)
//! S_R = (b + sqrt(a·b)) / (D − c)
//! ```
//!
//! The completion-time *basis* of the inversion is selectable
//! ([`BoundBasis`]): the ARIA model offers the lower bound (aggressive —
//! fewest slots, frequent overruns), the mean of bounds (the paper's
//! "typically a good approximation", our default), or the upper bound
//! (conservative — deadlines guaranteed by the makespan theorem, at the
//! cost of over-allocation; with tight deadline factors it degenerates to
//! the maximal allocation, i.e. MaxEDF). The `allocation_basis` ablation
//! bench quantifies the trade-off.
//!
//! We take ceilings of the analytic point, then run a feasibility repair
//! loop against [`estimate_completion`] — the analytic point is
//! real-valued and the paper conserves slots, so we verify and nudge
//! rather than trust the floor/ceil blindly.

use crate::completion::{estimate_completion, CompletionEstimate, JobProfileSummary};
use simmr_types::DurationMs;

/// A map/reduce slot allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SlotAllocation {
    /// Map slots `S_M`.
    pub maps: usize,
    /// Reduce slots `S_R`.
    pub reduces: usize,
}

impl SlotAllocation {
    /// Total slots, the quantity MinEDF conserves.
    pub fn total(&self) -> usize {
        self.maps + self.reduces
    }
}

/// Which completion-time bound the deadline inversion targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BoundBasis {
    /// Optimistic: size against `T_low`.
    Lower,
    /// The paper's default: size against `(T_low + T_up) / 2`.
    #[default]
    Estimate,
    /// Conservative: size against `T_up` (deadline guaranteed when met).
    Upper,
}

impl BoundBasis {
    /// Evaluates the chosen bound of an estimate.
    pub fn eval(self, est: &CompletionEstimate) -> f64 {
        match self {
            BoundBasis::Lower => est.low,
            BoundBasis::Estimate => est.predicted(),
            BoundBasis::Upper => est.up,
        }
    }
}

/// [`min_slots_for_deadline_with`] using the default
/// [`BoundBasis::Estimate`] basis.
pub fn min_slots_for_deadline(
    profile: &JobProfileSummary,
    deadline: DurationMs,
    max_maps: usize,
    max_reduces: usize,
) -> SlotAllocation {
    min_slots_for_deadline_with(profile, deadline, max_maps, max_reduces, BoundBasis::default())
}

/// Computes the minimal `(S_M, S_R)` whose `basis` completion time meets
/// `deadline` (a relative duration from job start), clamped to the cluster
/// capacity `(max_maps, max_reduces)`.
///
/// If even the maximum allocation misses the deadline, the maximum useful
/// allocation (slots capped at task counts) is returned — the scheduler can
/// do no better. Returns at least one map slot (and one reduce slot when the
/// job has reduces): a zero allocation would never finish.
pub fn min_slots_for_deadline_with(
    profile: &JobProfileSummary,
    deadline: DurationMs,
    max_maps: usize,
    max_reduces: usize,
    basis: BoundBasis,
) -> SlotAllocation {
    let cap_m = max_maps.min(profile.num_maps).max(1);
    let cap_r =
        if profile.num_reduces == 0 { 0 } else { max_reduces.min(profile.num_reduces).max(1) };
    let max_alloc = SlotAllocation { maps: cap_m, reduces: cap_r };
    let t_of = |m: usize, r: usize| basis.eval(&estimate_completion(profile, m, r));

    // Fast path: even all the slots in the world cannot meet the deadline.
    if t_of(cap_m, cap_r) > deadline as f64 {
        return max_alloc;
    }

    // Coefficients of the T(S_M, S_R) = a/S_M + b/S_R + c hyperbola
    // (Equation 1 form of the bounds in `completion`, dropping the
    // clamped-at-zero wave terms — the repair loop below reconciles the
    // analytic seed with the exact piecewise estimate):
    //   low ≈ Mavg·N_M/S_M + (Shtyp_avg+Ravg)·N_R/S_R + Sh1avg − Shtyp_avg
    //   up  ≈ Mavg·(N_M−1)/S_M + (Shtyp_avg+Ravg)·(N_R−1)/S_R
    //         + Mmax + Sh1max + Shtyp_max + Rmax − Shtyp_avg
    let n_m = profile.num_maps as f64;
    let n_r = profile.num_reduces as f64;
    let sr_avg = profile.sr_avg();
    let has_r = profile.num_reduces > 0;
    let (a, b, c) = match basis {
        BoundBasis::Lower => (
            profile.map.avg * n_m,
            if has_r { sr_avg * n_r } else { 0.0 },
            if has_r { profile.first_shuffle.avg - profile.shuffle.avg } else { 0.0 },
        ),
        BoundBasis::Estimate => (
            profile.map.avg * (n_m - 0.5),
            if has_r { sr_avg * (n_r - 0.5) } else { 0.0 },
            0.5 * profile.map.max as f64
                + if has_r {
                    0.5 * (profile.first_shuffle.avg
                        + profile.first_shuffle.max as f64
                        + profile.sr_max())
                        - profile.shuffle.avg
                } else {
                    0.0
                },
        ),
        BoundBasis::Upper => (
            profile.map.avg * (n_m - 1.0),
            if has_r { sr_avg * (n_r - 1.0) } else { 0.0 },
            profile.map.max as f64
                + if has_r {
                    profile.first_shuffle.max as f64 + profile.sr_max() - profile.shuffle.avg
                } else {
                    0.0
                },
        ),
    };

    let budget = deadline as f64 - c;
    let analytic = if budget <= 0.0 {
        max_alloc
    } else if profile.num_reduces == 0 {
        SlotAllocation { maps: ((a / budget).ceil() as usize).clamp(1, cap_m), reduces: 0 }
    } else {
        let root = (a * b).sqrt();
        let s_m = ((a + root) / budget).ceil() as usize;
        let s_r = ((b + root) / budget).ceil() as usize;
        SlotAllocation { maps: s_m.clamp(1, cap_m), reduces: s_r.clamp(1, cap_r) }
    };

    // Feasibility repair: grow the cheaper dimension until the basis bound
    // meets the deadline (terminates at max_alloc, known feasible).
    let mut alloc = analytic;
    loop {
        if t_of(alloc.maps, alloc.reduces) <= deadline as f64 {
            break;
        }
        if alloc.maps >= cap_m && alloc.reduces >= cap_r {
            break;
        }
        let grow_m =
            if alloc.maps < cap_m { t_of(alloc.maps + 1, alloc.reduces) } else { f64::INFINITY };
        let grow_r =
            if alloc.reduces < cap_r { t_of(alloc.maps, alloc.reduces + 1) } else { f64::INFINITY };
        if grow_m <= grow_r {
            alloc.maps += 1;
        } else {
            alloc.reduces += 1;
        }
    }

    // Trim pass: shrink while still meeting the deadline (cheap descent —
    // the hyperbola analytic point is already near-minimal).
    loop {
        if alloc.maps > 1 && t_of(alloc.maps - 1, alloc.reduces) <= deadline as f64 {
            alloc.maps -= 1;
            continue;
        }
        if alloc.reduces > 1 && t_of(alloc.maps, alloc.reduces - 1) <= deadline as f64 {
            alloc.reduces -= 1;
            continue;
        }
        break;
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use simmr_types::JobTemplate;

    fn profile(maps: usize, reduces: usize, md: u64, shd: u64, rd: u64) -> JobProfileSummary {
        let t = JobTemplate::new(
            "t",
            vec![md; maps],
            if reduces > 0 { vec![shd] } else { vec![] },
            if reduces > 0 { vec![shd; reduces] } else { vec![] },
            vec![rd; reduces],
        )
        .unwrap();
        JobProfileSummary::from_template(&t)
    }

    #[test]
    fn loose_deadline_needs_few_slots() {
        let p = profile(100, 50, 1000, 500, 300);
        // serial work ≈ 100s maps + 40s reduces; a very generous deadline
        let alloc = min_slots_for_deadline(&p, 1_000_000, 64, 64);
        assert!(alloc.maps <= 2, "{alloc:?}");
        assert!(alloc.reduces <= 2, "{alloc:?}");
    }

    #[test]
    fn tight_deadline_needs_many_slots() {
        let p = profile(100, 50, 1000, 500, 300);
        let loose = min_slots_for_deadline(&p, 200_000, 64, 64);
        let tight = min_slots_for_deadline(&p, 10_000, 64, 64);
        assert!(tight.total() > loose.total(), "tight {tight:?} loose {loose:?}");
    }

    #[test]
    fn impossible_deadline_returns_max() {
        let p = profile(10, 5, 10_000, 1000, 1000);
        let alloc = min_slots_for_deadline(&p, 1, 64, 64);
        assert_eq!(alloc, SlotAllocation { maps: 10, reduces: 5 });
    }

    #[test]
    fn allocation_meets_deadline_when_feasible() {
        let p = profile(40, 20, 2000, 800, 400);
        for &deadline in &[30_000u64, 60_000, 120_000, 500_000] {
            let max = estimate_completion(&p, 64, 64).predicted();
            let alloc = min_slots_for_deadline(&p, deadline, 64, 64);
            let t = estimate_completion(&p, alloc.maps, alloc.reduces).predicted();
            if max <= deadline as f64 {
                assert!(
                    t <= deadline as f64 + 1e-6,
                    "deadline {deadline}: alloc {alloc:?} predicted {t}"
                );
            }
        }
    }

    #[test]
    fn map_only_job() {
        let p = profile(20, 0, 1000, 0, 0);
        let alloc = min_slots_for_deadline(&p, 5_000, 32, 32);
        assert_eq!(alloc.reduces, 0);
        assert!(alloc.maps >= 4, "{alloc:?}");
        let t = estimate_completion(&p, alloc.maps, 0).predicted();
        assert!(t <= 5_000.0);
    }

    #[test]
    fn clamped_by_cluster_capacity() {
        let p = profile(100, 100, 5000, 1000, 1000);
        let alloc = min_slots_for_deadline(&p, 1000, 8, 8);
        assert!(alloc.maps <= 8 && alloc.reduces <= 8);
    }

    #[test]
    fn minimality_no_single_slot_removable() {
        let p = profile(60, 30, 1500, 700, 350);
        let deadline = 50_000;
        let alloc = min_slots_for_deadline(&p, deadline, 64, 64);
        let t = estimate_completion(&p, alloc.maps, alloc.reduces).predicted();
        assert!(t <= deadline as f64);
        if alloc.maps > 1 {
            let t = estimate_completion(&p, alloc.maps - 1, alloc.reduces).predicted();
            assert!(t > deadline as f64, "map slot removable");
        }
        if alloc.reduces > 1 {
            let t = estimate_completion(&p, alloc.maps, alloc.reduces - 1).predicted();
            assert!(t > deadline as f64, "reduce slot removable");
        }
    }

    #[test]
    fn basis_ordering_lower_needs_fewest_slots() {
        let p = profile(80, 40, 1500, 600, 300);
        let deadline = 60_000;
        let lo = min_slots_for_deadline_with(&p, deadline, 64, 64, BoundBasis::Lower);
        let mid = min_slots_for_deadline_with(&p, deadline, 64, 64, BoundBasis::Estimate);
        let up = min_slots_for_deadline_with(&p, deadline, 64, 64, BoundBasis::Upper);
        assert!(lo.total() <= mid.total(), "{lo:?} vs {mid:?}");
        assert!(mid.total() <= up.total(), "{mid:?} vs {up:?}");
    }

    #[test]
    fn upper_basis_guarantees_bound() {
        let p = profile(50, 10, 2000, 500, 500);
        let deadline = 120_000;
        let alloc = min_slots_for_deadline_with(&p, deadline, 64, 64, BoundBasis::Upper);
        let worst = estimate_completion(&p, alloc.maps, alloc.reduces).up;
        // feasible case: the upper bound itself meets the deadline
        if estimate_completion(&p, 64, 64).up <= deadline as f64 {
            assert!(worst <= deadline as f64);
        }
    }

    #[test]
    fn basis_eval() {
        let est = CompletionEstimate { low: 10.0, up: 30.0 };
        assert_eq!(BoundBasis::Lower.eval(&est), 10.0);
        assert_eq!(BoundBasis::Estimate.eval(&est), 20.0);
        assert_eq!(BoundBasis::Upper.eval(&est), 30.0);
    }

    proptest! {
        /// For any profile and deadline: the returned allocation is within
        /// capacity, nonzero where needed, and meets the deadline whenever
        /// the full-capacity allocation does.
        #[test]
        fn allocation_sound(
            maps in 1usize..200,
            reduces in 0usize..100,
            md in 100u64..5_000,
            shd in 10u64..2_000,
            rd in 10u64..2_000,
            deadline in 1_000u64..2_000_000,
        ) {
            let p = profile(maps, reduces, md, shd, rd);
            let alloc = min_slots_for_deadline(&p, deadline, 64, 64);
            prop_assert!(alloc.maps >= 1 && alloc.maps <= 64);
            prop_assert!(alloc.reduces <= 64);
            if reduces > 0 { prop_assert!(alloc.reduces >= 1); }
            let full = estimate_completion(&p, 64, 64).predicted();
            if full <= deadline as f64 {
                let t = estimate_completion(&p, alloc.maps, alloc.reduces).predicted();
                prop_assert!(t <= deadline as f64 + 1e-6);
            }
        }

        /// Monotonicity: relaxing the deadline never increases the minimal
        /// total slot count.
        #[test]
        fn monotone_in_deadline(
            maps in 1usize..100,
            reduces in 1usize..50,
            deadline in 10_000u64..500_000,
        ) {
            let p = profile(maps, reduces, 1000, 400, 200);
            let tight = min_slots_for_deadline(&p, deadline, 64, 64);
            let loose = min_slots_for_deadline(&p, deadline * 2, 64, 64);
            prop_assert!(loose.total() <= tight.total(),
                "loose {loose:?} > tight {tight:?}");
        }

        /// Every basis yields an allocation meeting its own bound whenever
        /// feasible.
        #[test]
        fn all_bases_self_consistent(
            maps in 1usize..100,
            reduces in 0usize..50,
            deadline in 5_000u64..1_000_000,
        ) {
            let p = profile(maps, reduces, 800, 300, 200);
            for basis in [BoundBasis::Lower, BoundBasis::Estimate, BoundBasis::Upper] {
                let alloc = min_slots_for_deadline_with(&p, deadline, 64, 64, basis);
                let full = basis.eval(&estimate_completion(&p, 64, 64));
                if full <= deadline as f64 {
                    let t = basis.eval(&estimate_completion(&p, alloc.maps, alloc.reduces));
                    prop_assert!(t <= deadline as f64 + 1e-6, "{basis:?} {alloc:?}");
                }
            }
        }
    }
}
