//! Job completion-time estimation (Equation 1 of the paper).
//!
//! A job's profile is summarized by per-phase `(count, avg, max)` triples;
//! the completion time under an allocation of `S_M` map slots and `S_R`
//! reduce slots is bounded by applying the [`crate::bounds`] model to the
//! map stage and to the (shuffle + reduce) stage, plus the non-overlapping
//! first-shuffle term:
//!
//! ```text
//! T_low = Mavg·N_M/S_M            + Sh1avg + SRavg·N_R/S_R
//! T_up  = Mavg·(N_M−1)/S_M + Mmax + Sh1max + SRavg·(N_R−1)/S_R + SRmax
//! ```
//!
//! where `SR = typical-shuffle + reduce` per task. Both collapse to the
//! paper's `T = A·N_M/S_M + B·N_R/S_R + C` form with
//! `A = Mavg`, `B = SRavg` and phase-constant `C`.

use simmr_types::{JobTemplate, PhaseStats};

/// Per-phase summary of a job profile, the model's input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobProfileSummary {
    /// Number of map tasks.
    pub num_maps: usize,
    /// Number of reduce tasks.
    pub num_reduces: usize,
    /// Map-task durations.
    pub map: PhaseStats,
    /// Non-overlapping first-shuffle durations.
    pub first_shuffle: PhaseStats,
    /// Typical shuffle durations.
    pub shuffle: PhaseStats,
    /// Reduce-phase durations.
    pub reduce: PhaseStats,
}

impl JobProfileSummary {
    /// Extracts the summary from a job template.
    pub fn from_template(t: &JobTemplate) -> Self {
        JobProfileSummary {
            num_maps: t.num_maps,
            num_reduces: t.num_reduces,
            map: t.map_stats(),
            first_shuffle: t.first_shuffle_stats(),
            shuffle: t.shuffle_stats(),
            reduce: t.reduce_stats(),
        }
    }

    /// Combined average duration of one reduce task (typical shuffle +
    /// reduce phase) — the `B` coefficient.
    pub fn sr_avg(&self) -> f64 {
        self.shuffle.avg + self.reduce.avg
    }

    /// Combined maximum duration of one reduce task.
    pub fn sr_max(&self) -> f64 {
        (self.shuffle.max + self.reduce.max) as f64
    }
}

/// Lower/upper/estimate completion times for one allocation, in fractional
/// milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletionEstimate {
    /// Lower bound `T_J^low`.
    pub low: f64,
    /// Upper bound `T_J^up`.
    pub up: f64,
}

impl CompletionEstimate {
    /// The model's point prediction: the average of the two bounds.
    pub fn predicted(&self) -> f64 {
        0.5 * (self.low + self.up)
    }

    /// True when a measured completion time falls inside the bounds,
    /// widened by a multiplicative `slack` (≥ 1, e.g. `1.15` for the
    /// paper's ≈10–15% validation error band in §V) and by 1 ms for
    /// integer-rounding of simulated times.
    pub fn contains(&self, actual_ms: f64, slack: f64) -> bool {
        actual_ms >= self.low / slack - 1.0 && actual_ms <= self.up * slack + 1.0
    }
}

/// Estimates job completion time for an allocation of `map_slots` /
/// `reduce_slots` (Equation 1). Slots are capped at the respective task
/// counts (extra slots beyond one per task are idle). An allocation of zero
/// map slots (or zero reduce slots while reduces exist) returns
/// `f64::INFINITY` bounds — the job can never finish.
pub fn estimate_completion(
    profile: &JobProfileSummary,
    map_slots: usize,
    reduce_slots: usize,
) -> CompletionEstimate {
    if map_slots == 0 || (profile.num_reduces > 0 && reduce_slots == 0) {
        return CompletionEstimate { low: f64::INFINITY, up: f64::INFINITY };
    }
    let s_m = map_slots.min(profile.num_maps).max(1) as f64;
    let n_m = profile.num_maps as f64;

    let mut low = profile.map.avg * n_m / s_m;
    let mut up = profile.map.avg * (n_m - 1.0) / s_m + profile.map.max as f64;

    if profile.num_reduces > 0 {
        let s_r = reduce_slots.min(profile.num_reduces).max(1) as f64;
        let n_r = profile.num_reduces as f64;
        low += profile.first_shuffle.avg
            + profile.shuffle.avg * (n_r / s_r - 1.0).max(0.0)
            + profile.reduce.avg * n_r / s_r;
        up += profile.first_shuffle.max as f64
            + profile.shuffle.avg * ((n_r - 1.0) / s_r - 1.0).max(0.0)
            + profile.shuffle.max as f64
            + profile.reduce.avg * (n_r - 1.0) / s_r
            + profile.reduce.max as f64;
    }
    CompletionEstimate { low, up }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmr_types::JobTemplate;

    fn uniform_template(maps: usize, reduces: usize, md: u64, shd: u64, rd: u64) -> JobTemplate {
        JobTemplate::new(
            "t",
            vec![md; maps],
            vec![shd; reduces.clamp(1, 4)],
            vec![shd; reduces.max(1)],
            vec![rd; reduces],
        )
        .unwrap()
    }

    #[test]
    fn map_only_job() {
        let t = JobTemplate::new("m", vec![100; 10], vec![], vec![], vec![]).unwrap();
        let p = JobProfileSummary::from_template(&t);
        let est = estimate_completion(&p, 5, 0);
        // uniform durations: low = 10*100/5 = 200, up = 9*100/5 + 100 = 280
        assert_eq!(est.low, 200.0);
        assert_eq!(est.up, 280.0);
        assert_eq!(est.predicted(), 240.0);
    }

    #[test]
    fn full_job_bounds_order() {
        let t = uniform_template(20, 10, 100, 50, 30);
        let p = JobProfileSummary::from_template(&t);
        let est = estimate_completion(&p, 4, 2);
        assert!(est.low <= est.up);
        assert!(est.low > 0.0);
        // low = 20*100/4 + Sh1(50) + Shtyp(50)*(10/2 - 1) + R(30)*10/2
        //     = 500 + 50 + 200 + 150 = 900
        assert!((est.low - 900.0).abs() < 1e-9, "low={}", est.low);
    }

    #[test]
    fn more_slots_never_slower() {
        let t = uniform_template(50, 20, 200, 80, 40);
        let p = JobProfileSummary::from_template(&t);
        let mut prev = f64::INFINITY;
        for slots in 1..=50 {
            let est = estimate_completion(&p, slots, slots);
            assert!(est.predicted() <= prev + 1e-9);
            prev = est.predicted();
        }
    }

    #[test]
    fn slots_capped_at_task_count() {
        let t = uniform_template(4, 2, 100, 10, 10);
        let p = JobProfileSummary::from_template(&t);
        let a = estimate_completion(&p, 4, 2);
        let b = estimate_completion(&p, 400, 200);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_slots_infeasible() {
        let t = uniform_template(4, 2, 100, 10, 10);
        let p = JobProfileSummary::from_template(&t);
        assert!(estimate_completion(&p, 0, 2).low.is_infinite());
        assert!(estimate_completion(&p, 2, 0).up.is_infinite());
        // ...but a map-only job needs no reduce slots
        let t = JobTemplate::new("m", vec![10; 4], vec![], vec![], vec![]).unwrap();
        let p = JobProfileSummary::from_template(&t);
        assert!(estimate_completion(&p, 2, 0).up.is_finite());
    }

    #[test]
    fn contains_with_slack() {
        let est = CompletionEstimate { low: 200.0, up: 280.0 };
        assert!(est.contains(200.0, 1.0));
        assert!(est.contains(280.0, 1.0));
        assert!(est.contains(240.0, 1.0));
        assert!(!est.contains(150.0, 1.0));
        assert!(!est.contains(350.0, 1.0));
        // 15% slack widens both ends
        assert!(est.contains(180.0, 1.15));
        assert!(est.contains(320.0, 1.15));
        assert!(!est.contains(100.0, 1.15));
    }

    #[test]
    fn profile_summary_extraction() {
        let t = JobTemplate::new("x", vec![10, 30], vec![5], vec![8, 12], vec![4, 6]).unwrap();
        let p = JobProfileSummary::from_template(&t);
        assert_eq!(p.num_maps, 2);
        assert_eq!(p.map.avg, 20.0);
        assert_eq!(p.map.max, 30);
        assert_eq!(p.sr_avg(), 10.0 + 5.0);
        assert_eq!(p.sr_max(), 12.0 + 6.0);
    }
}
