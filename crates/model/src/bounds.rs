//! Makespan bounds for greedy task assignment.
//!
//! §V-A of the paper: *"Let T1..Tn be the duration of n tasks ... Let k be
//! the number of slots ... Then the makespan of a greedy task assignment is
//! at least `n·avg/k` and at most `(n−1)·avg/k + max`."*

use simmr_types::DurationMs;

/// Lower/upper makespan bounds, in (fractional) milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MakespanBounds {
    /// Lower bound `n·avg/k`.
    pub low: f64,
    /// Upper bound `(n−1)·avg/k + max`.
    pub up: f64,
}

impl MakespanBounds {
    /// The midpoint `(low + up)/2` — "typically a good approximation of the
    /// job completion time" (§V-A).
    pub fn estimate(&self) -> f64 {
        0.5 * (self.low + self.up)
    }
}

/// Computes the greedy-assignment makespan bounds for a task set summarized
/// by `(n, avg, max)` running on `k` slots.
///
/// `k == 0` or `n == 0` yields zero bounds (no work can be placed /
/// no work exists); callers treat zero-slot allocations as infeasible
/// separately.
pub fn makespan_bounds(n: usize, avg: f64, max: DurationMs, k: usize) -> MakespanBounds {
    if n == 0 || k == 0 {
        return MakespanBounds { low: 0.0, up: 0.0 };
    }
    let n_f = n as f64;
    let k_f = k as f64;
    MakespanBounds { low: n_f * avg / k_f, up: (n_f - 1.0) * avg / k_f + max as f64 }
}

/// Reference implementation of the online greedy assignment: each task (in
/// the given order) goes to the slot with the earliest finishing time.
/// Returns the resulting makespan. Used by property tests to certify
/// [`makespan_bounds`] and by the engine tests as an oracle.
pub fn greedy_makespan(durations: &[DurationMs], k: usize) -> DurationMs {
    if durations.is_empty() || k == 0 {
        return 0;
    }
    // a simple O(n·k) loop; n and k are small in tests and this is the
    // *reference* implementation, clarity over speed
    let mut finish = vec![0u64; k.min(durations.len())];
    for &d in durations {
        let (idx, _) =
            finish.iter().enumerate().min_by_key(|&(_, &f)| f).expect("non-empty slot vector");
        finish[idx] += d;
    }
    finish.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bounds_formulae() {
        // 4 tasks of avg 10, max 16, on 2 slots
        let b = makespan_bounds(4, 10.0, 16, 2);
        assert_eq!(b.low, 20.0);
        assert_eq!(b.up, 31.0);
        assert_eq!(b.estimate(), 25.5);
    }

    #[test]
    fn zero_cases() {
        assert_eq!(makespan_bounds(0, 10.0, 10, 4).up, 0.0);
        assert_eq!(makespan_bounds(5, 10.0, 10, 0).low, 0.0);
        assert_eq!(greedy_makespan(&[], 3), 0);
        assert_eq!(greedy_makespan(&[5, 5], 0), 0);
    }

    #[test]
    fn greedy_single_slot_is_sum() {
        assert_eq!(greedy_makespan(&[3, 4, 5], 1), 12);
    }

    #[test]
    fn greedy_many_slots_is_max() {
        assert_eq!(greedy_makespan(&[3, 4, 5], 10), 5);
    }

    #[test]
    fn greedy_balances() {
        // tasks 5,5,5,5 on 2 slots => 10
        assert_eq!(greedy_makespan(&[5, 5, 5, 5], 2), 10);
        // 8,2,2,2,2 on 2 slots: greedy = 8 | 2+2+2+2 = 8
        assert_eq!(greedy_makespan(&[8, 2, 2, 2, 2], 2), 8);
    }

    fn avg_max(d: &[DurationMs]) -> (f64, DurationMs) {
        let avg = d.iter().map(|&x| x as f64).sum::<f64>() / d.len() as f64;
        let max = d.iter().copied().max().unwrap();
        (avg, max)
    }

    proptest! {
        /// The paper's core claim: greedy makespan always lies in
        /// [n·avg/k, (n−1)·avg/k + max].
        #[test]
        fn greedy_within_bounds(
            durations in proptest::collection::vec(1u64..10_000, 1..200),
            k in 1usize..32,
        ) {
            let makespan = greedy_makespan(&durations, k) as f64;
            let (avg, max) = avg_max(&durations);
            let b = makespan_bounds(durations.len(), avg, max, k);
            // float slack for the avg computation
            prop_assert!(makespan >= b.low - 1e-6,
                "makespan {makespan} < low {}", b.low);
            prop_assert!(makespan <= b.up + 1e-6,
                "makespan {makespan} > up {}", b.up);
        }

        /// More slots never hurt the greedy makespan.
        #[test]
        fn greedy_monotone_in_slots(
            durations in proptest::collection::vec(1u64..1_000, 1..100),
            k in 1usize..16,
        ) {
            let m1 = greedy_makespan(&durations, k);
            let m2 = greedy_makespan(&durations, k + 1);
            prop_assert!(m2 <= m1);
        }
    }
}
