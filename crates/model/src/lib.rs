//! # simmr-model
//!
//! The bounds-based MapReduce performance model that powers the MinEDF
//! scheduler (§V-A of the SimMR paper, introduced in the companion ARIA
//! paper, ICAC'11).
//!
//! Three layers:
//!
//! * [`bounds`] — the general makespan bounds for `n` tasks greedily
//!   assigned to `k` slots: `low = n·avg/k`, `up = (n−1)·avg/k + max`,
//!   plus a reference greedy-assignment simulator used by the property
//!   tests to certify the bounds;
//! * [`completion`] — per-job completion-time estimation `T_J^low/T_J^up`
//!   as a function of allocated map/reduce slots (Equation 1 of the paper);
//! * [`allocation`] — the inverse problem: the minimal `(S_M, S_R)` meeting
//!   a deadline, found on the allocation hyperbola via Lagrange multipliers.

pub mod allocation;
pub mod bounds;
pub mod completion;

pub use allocation::{
    min_slots_for_deadline, min_slots_for_deadline_with, BoundBasis, SlotAllocation,
};
pub use bounds::{greedy_makespan, makespan_bounds, MakespanBounds};
pub use completion::{estimate_completion, CompletionEstimate, JobProfileSummary};
